// Property-style sweeps over machine geometries and problem shapes.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "exp/experiment.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace mcmm {
namespace {

using mcmm::testing::FmaCoverage;

struct Geometry {
  int p;
  std::int64_t cs;
  std::int64_t cd;
};

std::vector<Geometry> geometries() {
  return {
      {1, 13, 3},   {1, 91, 21},  {2, 26, 6},   {4, 91, 21},
      {4, 157, 4},  {4, 245, 6},  {4, 977, 21}, {6, 392, 13},
      {8, 200, 13}, {9, 200, 13}, {16, 977, 21},
  };
}

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, EverySchedulePerformsExactlyTheRequiredWork) {
  const Geometry g = GetParam();
  MachineConfig cfg;
  cfg.p = g.p;
  cfg.cs = g.cs;
  cfg.cd = g.cd;
  const Problem prob{11, 9, 7};
  for (const auto& name : algorithm_names()) {
    Machine machine(cfg, Policy::kLru);
    FmaCoverage coverage(machine);
    make_algorithm(name)->run(machine, prob, cfg);
    EXPECT_TRUE(coverage.complete(prob))
        << name << " on p=" << g.p << " CS=" << g.cs << " CD=" << g.cd;
  }
}

TEST_P(GeometrySweep, IdealNeverBeatsLowerBounds) {
  const Geometry g = GetParam();
  MachineConfig cfg;
  cfg.p = g.p;
  cfg.cs = g.cs;
  cfg.cd = g.cd;
  const Problem prob{12, 12, 12};
  for (const auto& name : algorithm_names()) {
    const AlgorithmPtr alg = make_algorithm(name);
    if (!alg->supports_ideal()) continue;
    Machine machine(cfg, Policy::kIdeal);
    alg->run(machine, prob, cfg);
    EXPECT_GE(static_cast<double>(machine.stats().ms()),
              0.999 * ms_lower_bound(prob, cfg.cs))
        << name;
    EXPECT_GE(static_cast<double>(machine.stats().md()),
              0.999 * md_lower_bound(prob, cfg.p, cfg.cd))
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep, ::testing::ValuesIn(geometries()),
    [](const ::testing::TestParamInfo<Geometry>& p_info) {
      const Geometry& g = p_info.param;
      std::string name = "p";
  name += std::to_string(g.p);
  name += "cs";
  name += std::to_string(g.cs);
  name += "cd";
  name += std::to_string(g.cd);
  return name;
    });

// Closed-form exactness swept jointly over problem shape for all three
// Maximum Reuse variants (SharedOpt needs p | lambda; use CS=73 -> 8).
class ExactnessSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ExactnessSweep, AllThreeVariantsMatchTheirFormulas) {
  const auto [mi, ni, zi] = GetParam();
  const Problem prob{8 * mi, 8 * ni, 8 * zi};

  {  // SharedOpt with lambda = 8.
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = 73;
    cfg.cd = 3;
    Machine machine(cfg, Policy::kIdeal);
    make_algorithm("shared-opt")->run(machine, prob, cfg);
    const auto pred =
        predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
    EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
    EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  }
  {  // DistributedOpt with mu = 4, tile = 8.
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = 977;
    cfg.cd = 21;
    Machine machine(cfg, Policy::kIdeal);
    make_algorithm("distributed-opt")->run(machine, prob, cfg);
    const auto pred =
        predict_distributed_opt(prob, cfg.p, distributed_opt_params(cfg));
    EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
    EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  }
  {  // Tradeoff special case (alpha = 8 = sqrt(p) mu) with CS=91, beta=1.
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = 91;
    cfg.cd = 21;
    const TradeoffParams params = tradeoff_params(cfg);
    ASSERT_EQ(params.alpha, 8);
    if (prob.z % params.beta == 0) {
      Machine machine(cfg, Policy::kIdeal);
      make_algorithm("tradeoff")->run(machine, prob, cfg);
      const auto pred = predict_tradeoff(prob, cfg.p, params);
      EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
      EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
    }
  }
}

std::string exactness_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  std::string name = "m";
  name += std::to_string(std::get<0>(info.param));
  name += "n";
  name += std::to_string(std::get<1>(info.param));
  name += "z";
  name += std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExactnessSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 2),
                       ::testing::Values(1, 2, 4)),
    exactness_case_name);

// Declaring a bigger shared cache can only reduce SharedOpt's IDEAL MS.
TEST(Monotonicity, SharedOptMsDecreasesWithDeclaredCs) {
  const Problem prob = Problem::square(24);
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t cs : {13, 31, 57, 91, 157, 245, 577, 977}) {
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = cs;
    cfg.cd = 3;
    Machine machine(cfg, Policy::kIdeal);
    make_algorithm("shared-opt")->run(machine, prob, cfg);
    EXPECT_LE(machine.stats().ms(), prev) << "CS=" << cs;
    prev = machine.stats().ms();
  }
}

// Larger distributed caches can only reduce DistributedOpt's IDEAL MD
// (capacities chosen so mu | 24: ragged tiles would unbalance the cores
// and break monotonicity of the *max*, as the paper's divisibility
// assumptions anticipate).
TEST(Monotonicity, DistributedOptMdDecreasesWithDeclaredCd) {
  const Problem prob = Problem::square(24);
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t cd : {3, 7, 13, 21, 43}) {
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = 4 * 57;
    cfg.cd = cd;
    Machine machine(cfg, Policy::kIdeal);
    make_algorithm("distributed-opt")->run(machine, prob, cfg);
    EXPECT_LE(machine.stats().md(), prev) << "CD=" << cd;
    prev = machine.stats().md();
  }
}

// Miss counts are deterministic: two identical runs agree bit-for-bit.
TEST(Determinism, RepeatedRunsAgreeExactly) {
  const Problem prob{17, 13, 9};
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 245;
  cfg.cd = 6;
  for (const auto& name : algorithm_names()) {
    for (const Setting s : {Setting::kIdeal, Setting::kLru50}) {
      const RunResult r1 = run_experiment(name, prob, cfg, s);
      const RunResult r2 = run_experiment(name, prob, cfg, s);
      EXPECT_EQ(r1.ms, r2.ms) << name;
      EXPECT_EQ(r1.md, r2.md) << name;
      EXPECT_EQ(r1.stats.writebacks_to_memory, r2.stats.writebacks_to_memory)
          << name;
    }
  }
}

// Transposing the problem (m <-> n) must not change the total work and
// keeps miss counts in the same ballpark (schedules are j/i asymmetric).
TEST(Symmetry, TransposedProblemsDoTheSameWork) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 245;
  cfg.cd = 6;
  const Problem ab{14, 6, 10};
  const Problem ba{6, 14, 10};
  for (const auto& name : algorithm_names()) {
    const RunResult r1 = run_experiment(name, ab, cfg, Setting::kLru50);
    const RunResult r2 = run_experiment(name, ba, cfg, Setting::kLru50);
    EXPECT_EQ(r1.stats.total_fmas(), r2.stats.total_fmas()) << name;
  }
}

}  // namespace
}  // namespace mcmm
