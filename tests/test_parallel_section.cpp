#include "sim/parallel_section.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcmm {
namespace {

MachineConfig cfg(int p = 2) {
  MachineConfig c;
  c.p = p;
  c.cs = 64;
  c.cd = 8;
  return c;
}

TEST(ParallelSection, RunsAllQueuedFmas) {
  Machine m(cfg(), Policy::kLru);
  ParallelSection par(m);
  for (int c = 0; c < 2; ++c) {
    for (std::int64_t i = 0; i < 3; ++i) par.fma(c, i, c, 0);
  }
  EXPECT_EQ(par.pending(), 6);
  par.run();
  EXPECT_EQ(par.pending(), 0);
  EXPECT_EQ(m.stats().fmas[0], 3);
  EXPECT_EQ(m.stats().fmas[1], 3);
}

TEST(ParallelSection, RoundRobinInterleaving) {
  Machine m(cfg(), Policy::kLru);
  std::vector<int> order;
  m.set_fma_observer([&](int core, std::int64_t, std::int64_t, std::int64_t) {
    order.push_back(core);
  });
  ParallelSection par(m);
  par.fma(0, 0, 0, 0);
  par.fma(0, 1, 0, 0);
  par.fma(1, 0, 1, 0);
  par.fma(1, 1, 1, 0);
  par.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}))
      << "one op per core per round";
}

TEST(ParallelSection, UnevenQueuesDrainCompletely) {
  Machine m(cfg(), Policy::kLru);
  std::vector<int> order;
  m.set_fma_observer([&](int core, std::int64_t, std::int64_t, std::int64_t) {
    order.push_back(core);
  });
  ParallelSection par(m);
  par.fma(0, 0, 0, 0);
  par.fma(1, 0, 1, 0);
  par.fma(1, 1, 1, 0);
  par.fma(1, 2, 1, 0);
  par.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 1, 1}));
}

TEST(ParallelSection, ReusableAcrossRuns) {
  Machine m(cfg(), Policy::kLru);
  ParallelSection par(m);
  par.fma(0, 0, 0, 0);
  par.run();
  par.fma(1, 0, 0, 1);
  par.run();
  EXPECT_EQ(m.stats().total_fmas(), 2);
}

TEST(ParallelSection, ManagementOpsDriveIdealMachine) {
  Machine m(cfg(), Policy::kIdeal);
  m.load_shared(BlockId::a(0, 0));
  m.load_shared(BlockId::b(0, 0));
  m.load_shared(BlockId::c(0, 0));
  ParallelSection par(m);
  par.load_distributed(0, BlockId::a(0, 0));
  par.load_distributed(0, BlockId::b(0, 0));
  par.load_distributed(0, BlockId::c(0, 0));
  par.fma(0, 0, 0, 0);
  par.evict_distributed(0, BlockId::a(0, 0));
  par.evict_distributed(0, BlockId::b(0, 0));
  par.evict_distributed(0, BlockId::c(0, 0));
  par.run();
  EXPECT_EQ(m.stats().dist_misses[0], 3);
  EXPECT_EQ(m.stats().writebacks_to_shared, 1) << "C was written";
  EXPECT_EQ(m.distributed_size(0), 0);
}

TEST(ParallelSection, ManagementOpsIgnoredUnderLru) {
  Machine m(cfg(), Policy::kLru);
  ParallelSection par(m);
  par.load_distributed(0, BlockId::a(0, 0));
  par.update_shared(0, BlockId::a(0, 0));
  par.evict_distributed(0, BlockId::a(0, 0));
  par.run();
  EXPECT_EQ(m.stats().dist_misses[0], 0);
  EXPECT_EQ(m.shared_size(), 0);
}

}  // namespace
}  // namespace mcmm
