// Formula exactness and tradeoff behaviour for Algorithm 3.
#include <gtest/gtest.h>

#include "alg/tradeoff.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

TEST(TradeoffExact, GeneralCaseMatchesClosedForm) {
  // CS=977, CD=21, sigma_S = sigma_D = 1: alpha_num ~ 23.0 snaps to the
  // better grid neighbour 24, beta = 8 -> the general (alpha > sqrt(p) mu)
  // formula applies.
  const MachineConfig cfg = paper_quadcore();
  const TradeoffParams params = tradeoff_params(cfg);
  ASSERT_EQ(params.mu, 4);
  ASSERT_GT(params.alpha, params.grain());
  ASSERT_EQ(params.alpha % params.grain(), 0);
  EXPECT_EQ(params.alpha, 24);
  EXPECT_EQ(params.beta, 8);

  // Divisible sizes: alpha | m,n and beta | z.
  const Problem prob{params.alpha * 2, params.alpha, params.beta * 3};
  Machine machine(cfg, Policy::kIdeal);
  Tradeoff().run(machine, prob, cfg);

  const MissPrediction pred = predict_tradeoff(prob, cfg.p, params);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  for (int c = 1; c < cfg.p; ++c) {
    EXPECT_EQ(machine.stats().dist_misses[c], machine.stats().dist_misses[0]);
  }
}

TEST(TradeoffExact, SpecialCaseAlphaEqualsGridMatchesClosedForm) {
  // CS=91 forces alpha == sqrt(p)*mu == 8: each core keeps its single C
  // sub-block for the whole tile.
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 91;
  cfg.cd = 21;
  const TradeoffParams params = tradeoff_params(cfg);
  ASSERT_TRUE(params.persistent_c());

  const Problem prob{16, 8, params.beta * 4};
  Machine machine(cfg, Policy::kIdeal);
  Tradeoff().run(machine, prob, cfg);

  const MissPrediction pred = predict_tradeoff(prob, cfg.p, params);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
}

TEST(Tradeoff, InterpolatesBetweenTheTwoOptimisedSchedules) {
  // For any bandwidth ratio the tradeoff's Tdata should be within a small
  // factor of min(SharedOpt, DistributedOpt) — that is its purpose.
  const Problem prob{32, 32, 32};
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const MachineConfig cfg = paper_quadcore().with_bandwidth_ratio(r);
    auto tdata = [&](const char* name) {
      Machine machine(cfg, Policy::kIdeal);
      make_algorithm(name)->run(machine, prob, cfg);
      return machine.stats().tdata(cfg.sigma_s, cfg.sigma_d);
    };
    const double t_trade = tdata("tradeoff");
    const double t_best =
        std::min(tdata("shared-opt"), tdata("distributed-opt"));
    EXPECT_LE(t_trade, 1.25 * t_best) << "r=" << r;
  }
}

TEST(Tradeoff, ExtremeRatiosReduceToTheSpecialisedSchedules) {
  const Problem prob{32, 32, 32};
  // r -> 1 means sigma_S >> sigma_D: distributed misses dominate Tdata and
  // the tradeoff must essentially match DistributedOpt's MD.
  {
    const MachineConfig cfg = paper_quadcore().with_bandwidth_ratio(0.999999);
    Machine trade(cfg, Policy::kIdeal);
    Tradeoff().run(trade, prob, cfg);
    Machine dist(cfg, Policy::kIdeal);
    make_algorithm("distributed-opt")->run(dist, prob, cfg);
    EXPECT_EQ(trade.stats().md(), dist.stats().md());
  }
  // r -> 0 means sigma_D >> sigma_S: shared misses dominate; alpha grows
  // toward lambda so MS approaches SharedOpt's within the snapping loss.
  {
    const MachineConfig cfg = paper_quadcore().with_bandwidth_ratio(1e-6);
    Machine trade(cfg, Policy::kIdeal);
    Tradeoff().run(trade, prob, cfg);
    Machine shared(cfg, Policy::kIdeal);
    make_algorithm("shared-opt")->run(shared, prob, cfg);
    EXPECT_LE(static_cast<double>(trade.stats().ms()),
              1.3 * static_cast<double>(shared.stats().ms()));
  }
}

TEST(Tradeoff, RaggedSizesCoverAndDrain) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{19, 23, 29};
  Machine machine(cfg, Policy::kIdeal);
  mcmm::testing::FmaCoverage coverage(machine);
  Tradeoff().run(machine, prob, cfg);
  EXPECT_TRUE(coverage.complete(prob));
  machine.assert_empty();
}

TEST(TradeoffPinned, HonoursExplicitParameters) {
  const MachineConfig cfg = paper_quadcore();
  TradeoffParams pinned = tradeoff_params(cfg);
  pinned.alpha = 8;  // force the special case instead of the solver's 24
  pinned.beta = (977 - 64) / 16;
  const Problem prob{16, 16, 16};
  Machine machine(cfg, Policy::kIdeal);
  Tradeoff(pinned).run(machine, prob, cfg);
  const MissPrediction pred = predict_tradeoff(prob, cfg.p, pinned);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  // alpha == sqrt(p)*mu: the special-case MD formula must hold (z = 16 is
  // not a multiple of beta = 57, so the panel is ragged but single).
  EXPECT_EQ(machine.stats().md(),
            16 * 16 / 4 + 2 * 16 * 16 * 16 / (4 * 4));
}

TEST(TradeoffPinned, RejectsInfeasibleParameters) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{8, 8, 8};
  TradeoffParams bad = tradeoff_params(cfg);

  bad.alpha = 30;  // not a multiple of sqrt(p)*mu = 8
  {
    Machine machine(cfg, Policy::kIdeal);
    EXPECT_THROW(Tradeoff(bad).run(machine, prob, cfg), Error);
  }
  bad = tradeoff_params(cfg);
  bad.alpha = 32;
  bad.beta = 100;  // 32^2 + 2*32*100 > 977
  {
    Machine machine(cfg, Policy::kIdeal);
    EXPECT_THROW(Tradeoff(bad).run(machine, prob, cfg), Error);
  }
  bad = tradeoff_params(cfg);
  bad.mu = 10;  // 1 + 10 + 100 > CD = 21
  bad.alpha = 2 * 10;
  bad.beta = 1;
  {
    Machine machine(cfg, Policy::kIdeal);
    EXPECT_THROW(Tradeoff(bad).run(machine, prob, cfg), Error);
  }
  bad = tradeoff_params(cfg);
  bad.grid = Grid{3, 3};  // 9 != p
  bad.alpha = 3 * bad.mu;  // multiple of the bad grain
  {
    Machine machine(cfg, Policy::kIdeal);
    EXPECT_THROW(Tradeoff(bad).run(machine, prob, cfg), Error);
  }
}

TEST(Tradeoff, RejectsMismatchedCoreCount) {
  MachineConfig physical = paper_quadcore();
  physical.p = 16;
  physical.cs = 16 * 21;
  Machine machine(physical, Policy::kIdeal);
  EXPECT_THROW(Tradeoff().run(machine, Problem::square(8), paper_quadcore()),
               Error);
}

}  // namespace
}  // namespace mcmm
