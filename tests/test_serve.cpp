// GEMM-as-a-service end-to-end: in-process clients drive GemmServer
// through submit/wait and run(), covering bit-correct results against the
// gemm_micro reference, bounded-queue backpressure, model-driven
// multi-tenant tilings, worker-fault isolation, graceful shutdown with
// requests in flight, and the mcmm-serve-v1 stats document.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/validate.hpp"
#include "lu/lu_kernel.hpp"
#include "serve/server.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/math.hpp"

namespace mcmm::serve {
namespace {

GemmServer::Config small_config() {
  GemmServer::Config config;
  config.workers = 2;
  config.queue_capacity = 8;
  config.max_tenants = 4;
  config.q = 16;
  config.shared_cache_bytes = 8ll << 20;
  config.private_cache_bytes = 256ll << 10;
  return config;
}

/// One product with its gemm_micro reference answer (same q and kernel
/// path the server dispatches with).
struct Product {
  Matrix a, b, c, expect;
  Product(std::int64_t m, std::int64_t n, std::int64_t z, std::int64_t q,
          std::uint64_t seed)
      : a(m, z), b(z, n), c(m, n, 0.0), expect(m, n, 0.0) {
    a.fill_random(seed);
    b.fill_random(seed + 1);
    KernelContext ref(1);
    gemm_micro(expect, a, b, q, ref);
  }
  GemmRequest request(int tenant,
                      ScheduleKind schedule = ScheduleKind::kAuto) {
    GemmRequest r;
    r.tenant = tenant;
    r.c = &c;
    r.a = &a;
    r.b = &b;
    r.schedule = schedule;
    return r;
  }
};

TEST(Serve, RoundTripMatchesGemmMicroEverySchedule) {
  GemmServer server(small_config());
  for (ScheduleKind kind : {ScheduleKind::kAuto, ScheduleKind::kSharedOpt,
                            ScheduleKind::kDistributedOpt,
                            ScheduleKind::kTradeoff}) {
    Product prod(48, 40, 56, small_config().q, 11);
    const GemmResponse response = server.run(prod.request(0, kind));
    ASSERT_TRUE(response.ok) << to_string(kind) << ": " << response.error;
    EXPECT_NE(response.schedule, ScheduleKind::kAuto);
    if (kind != ScheduleKind::kAuto) {
      EXPECT_EQ(response.schedule, kind);
    }
    EXPECT_TRUE(gemm_matches(prod.c, prod.expect, 56))
        << to_string(kind) << " max diff "
        << Matrix::max_abs_diff(prod.c, prod.expect);
    EXPECT_GE(response.queue_ms, 0.0);
    EXPECT_GT(response.exec_ms, 0.0);
    EXPECT_GT(response.trace.spans, 0) << "per-request trace missing";
    EXPECT_GT(response.trace.wall_ms, 0.0);
  }
  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.completed, 4);
  EXPECT_EQ(counters.failed, 0);
}

TEST(Serve, AutoScheduleFollowsPartitionedPrediction) {
  GemmServer server(small_config());
  Product prod(64, 64, 64, small_config().q, 3);
  const GemmResponse response = server.run(prod.request(0));
  ASSERT_TRUE(response.ok) << response.error;
  // Solo request: the model is partition(1) and the resolved schedule must
  // be exactly the predicted-Tdata argmin, not a heuristic.
  const TenantModel& model = server.partition(1);
  const std::int64_t q = model.tiling.q;
  const Problem prob{ceil_div(64, q), ceil_div(64, q), ceil_div(64, q)};
  EXPECT_EQ(response.schedule, choose_schedule(model, prob));
  EXPECT_EQ(response.active_tenants, 1);
}

TEST(Serve, ConcurrentClientsAllComplete) {
  GemmServer::Config config = small_config();
  config.queue_capacity = 32;
  GemmServer server(config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::vector<int> ok_counts(kClients, 0);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerClient; ++i) {
        Product prod(32, 32, 32, config.q,
                     static_cast<std::uint64_t>(100 + t * kPerClient + i));
        const GemmResponse response = server.run(prod.request(t));
        if (response.ok && gemm_matches(prod.c, prod.expect, 32)) {
          ++ok_counts[static_cast<std::size_t>(t)];
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (int t = 0; t < kClients; ++t) EXPECT_EQ(ok_counts[t], kPerClient);
  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.completed, kClients * kPerClient);
  EXPECT_EQ(counters.failed, 0);
  EXPECT_EQ(counters.rejected_queue_full, 0);
}

TEST(Serve, BoundedQueueRejectsWithBackpressure) {
  GemmServer::Config config = small_config();
  config.queue_capacity = 4;
  GemmServer server(config);
  server.pause_dispatch();

  std::vector<std::unique_ptr<Product>> products;
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (std::size_t i = 0; i < config.queue_capacity; ++i) {
    products.push_back(std::make_unique<Product>(32, 32, 32, config.q, i));
    const Submit submitted = server.submit(products.back()->request(0));
    ASSERT_EQ(submitted.status, SubmitStatus::kAccepted) << submitted.error;
    ASSERT_TRUE(submitted.ticket != nullptr);
    EXPECT_FALSE(submitted.ticket->done());
    tickets.push_back(submitted.ticket);
  }

  // The ring is full: the next submit is rejected *now* (backpressure),
  // not buffered for later.
  Product extra(32, 32, 32, config.q, 99);
  const Submit rejected = server.submit(extra.request(0));
  EXPECT_EQ(rejected.status, SubmitStatus::kRejectedQueueFull);
  EXPECT_TRUE(rejected.ticket == nullptr);
  EXPECT_NE(rejected.error.find("backpressure"), std::string::npos);

  server.resume_dispatch();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const GemmResponse& response = tickets[i]->wait();
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_TRUE(gemm_matches(products[i]->c, products[i]->expect, 32));
  }
  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.accepted,
            static_cast<std::int64_t>(config.queue_capacity));
  EXPECT_EQ(counters.rejected_queue_full, 1);
  EXPECT_EQ(counters.completed,
            static_cast<std::int64_t>(config.queue_capacity));

  // run() synthesises rejections into error replies instead of blocking.
  server.pause_dispatch();
  for (std::size_t i = 0; i < config.queue_capacity; ++i) {
    products[i]->c.set_zero();
    (void)server.submit(products[i]->request(0));
  }
  const GemmResponse synthesised = server.run(extra.request(0));
  EXPECT_FALSE(synthesised.ok);
  EXPECT_NE(synthesised.error.find("rejected-queue-full"), std::string::npos);
  server.resume_dispatch();
}

TEST(Serve, PerTenantQuotaRejectsOnlyTheSaturatedTenant) {
  GemmServer::Config config = small_config();
  config.max_inflight_per_tenant = 2;
  GemmServer server(config);
  server.pause_dispatch();

  // Fill tenant 0 exactly to its quota.
  std::vector<std::unique_ptr<Product>> products;
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 2; ++i) {
    products.push_back(std::make_unique<Product>(
        32, 32, 32, config.q, static_cast<std::uint64_t>(40 + i)));
    const Submit submitted = server.submit(products.back()->request(0));
    ASSERT_EQ(submitted.status, SubmitStatus::kAccepted) << submitted.error;
    tickets.push_back(submitted.ticket);
  }

  // Tenant 0 is at quota: rejected immediately, with no ticket.
  Product over(32, 32, 32, config.q, 50);
  const Submit rejected = server.submit(over.request(0));
  EXPECT_EQ(rejected.status, SubmitStatus::kRejectedTenantQuota);
  EXPECT_TRUE(rejected.ticket == nullptr);
  EXPECT_NE(rejected.error.find("quota"), std::string::npos);

  // Quotas are per tenant: another tenant is unaffected.
  products.push_back(std::make_unique<Product>(32, 32, 32, config.q, 51));
  const Submit other = server.submit(products.back()->request(1));
  ASSERT_EQ(other.status, SubmitStatus::kAccepted) << other.error;
  tickets.push_back(other.ticket);

  server.resume_dispatch();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_TRUE(tickets[i]->wait().ok);
    EXPECT_TRUE(gemm_matches(products[i]->c, products[i]->expect, 32));
  }

  // Completion releases the quota: tenant 0 can submit again.
  over.c.set_zero();
  const GemmResponse retry = server.run(over.request(0));
  EXPECT_TRUE(retry.ok) << retry.error;

  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.rejected_tenant_quota, 1);
  EXPECT_EQ(counters.completed, 4);

  // run() synthesises the rejection into an error reply, like queue-full.
  server.pause_dispatch();
  Product p0(32, 32, 32, config.q, 60);
  Product p1(32, 32, 32, config.q, 61);
  (void)server.submit(p0.request(0));
  (void)server.submit(p1.request(0));
  Product p2(32, 32, 32, config.q, 62);
  const GemmResponse synthesised = server.run(p2.request(0));
  EXPECT_FALSE(synthesised.ok);
  EXPECT_NE(synthesised.error.find("rejected-tenant-quota"),
            std::string::npos);
  server.resume_dispatch();
}

TEST(Serve, TenantQuotaCountsBatchesAsOneUnit) {
  GemmServer::Config config = small_config();
  config.max_inflight_per_tenant = 1;
  GemmServer server(config);
  server.pause_dispatch();

  // A whole batch charges its tenant ONE in-flight unit.
  std::vector<std::unique_ptr<Product>> products;
  std::vector<batch::BatchProduct> items;
  for (int i = 0; i < 4; ++i) {
    products.push_back(std::make_unique<Product>(
        16, 16, 16, config.q, static_cast<std::uint64_t>(70 + i)));
    items.push_back(
        batch::BatchProduct{&products.back()->c, &products.back()->a,
                            &products.back()->b});
  }
  BatchGemmRequest batch;
  batch.tenant = 0;
  batch.products = items;
  const BatchSubmit accepted = server.submit_batch(batch);
  ASSERT_EQ(accepted.status, SubmitStatus::kAccepted) << accepted.error;

  // ...so both a second batch and a scalar request hit the quota.
  const BatchSubmit second = server.submit_batch(batch);
  EXPECT_EQ(second.status, SubmitStatus::kRejectedTenantQuota);
  Product scalar(32, 32, 32, config.q, 80);
  EXPECT_EQ(server.submit(scalar.request(0)).status,
            SubmitStatus::kRejectedTenantQuota);

  server.resume_dispatch();
  const BatchGemmResponse& response = accepted.ticket->wait();
  EXPECT_TRUE(response.ok) << response.error;
  for (const std::unique_ptr<Product>& p : products) {
    EXPECT_TRUE(gemm_matches(p->c, p->expect, 16));
  }
  EXPECT_EQ(server.counters().rejected_tenant_quota, 2);
}

TEST(Serve, ShutdownDrainsRequestsInFlight) {
  GemmServer::Config config = small_config();
  GemmServer server(config);
  server.pause_dispatch();
  std::vector<std::unique_ptr<Product>> products;
  std::vector<std::shared_ptr<Ticket>> tickets;
  for (int i = 0; i < 3; ++i) {
    products.push_back(std::make_unique<Product>(
        32, 32, 32, config.q, static_cast<std::uint64_t>(i)));
    const Submit submitted = server.submit(products.back()->request(i % 2));
    ASSERT_EQ(submitted.status, SubmitStatus::kAccepted);
    tickets.push_back(submitted.ticket);
  }
  // Graceful shutdown: every admitted request still completes (the paused
  // dispatcher is resumed by shutdown itself), then admission closes.
  server.shutdown();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i]->done());
    EXPECT_TRUE(tickets[i]->wait().ok);
    EXPECT_TRUE(gemm_matches(products[i]->c, products[i]->expect, 32));
  }
  Product late(32, 32, 32, config.q, 77);
  const Submit refused = server.submit(late.request(0));
  EXPECT_EQ(refused.status, SubmitStatus::kRejectedShutdown);
  const GemmResponse reply = server.run(late.request(0));
  EXPECT_FALSE(reply.ok);
  EXPECT_NE(reply.error.find("rejected-shutdown"), std::string::npos);
  server.shutdown();  // idempotent; destructor will call it again
  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.completed, 3);
  EXPECT_EQ(counters.rejected_shutdown, 2);
}

TEST(Serve, MultiTenantRequestsUsePartitionedTilings) {
  GemmServer::Config config = small_config();
  GemmServer server(config);
  // The halved share must actually change the model: lambda solves
  // 1 + lambda + lambda^2 <= CS, so CS/2 gives a strictly smaller lambda.
  const Tiling solo = server.partition(1).tiling;
  const Tiling duo = server.partition(2).tiling;
  ASSERT_NE(duo.lambda, solo.lambda);
  ASSERT_EQ(server.partition(2).cs_share_bytes,
            config.shared_cache_bytes / 2);

  server.pause_dispatch();
  Product first(48, 48, 48, config.q, 21);
  Product second(48, 48, 48, config.q, 22);
  const Submit s0 = server.submit(first.request(0));
  const Submit s1 = server.submit(second.request(1));
  ASSERT_EQ(s0.status, SubmitStatus::kAccepted);
  ASSERT_EQ(s1.status, SubmitStatus::kAccepted);
  server.resume_dispatch();
  const GemmResponse& r0 = s0.ticket->wait();
  const GemmResponse& r1 = s1.ticket->wait();

  // FIFO dispatch: the first request executes while tenant 1's request is
  // still pending, so it is served on the 2-tenant partition; by the time
  // the second runs it is alone again and gets the full share back.
  ASSERT_TRUE(r0.ok) << r0.error;
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_EQ(r0.active_tenants, 2);
  EXPECT_EQ(r0.tiling.lambda, duo.lambda);
  EXPECT_EQ(r1.active_tenants, 1);
  EXPECT_EQ(r1.tiling.lambda, solo.lambda);
  EXPECT_NE(r0.tiling.lambda, r1.tiling.lambda);

  // Partitioning only reshapes the schedule; results stay bit-correct.
  EXPECT_TRUE(gemm_matches(first.c, first.expect, 48))
      << "max diff " << Matrix::max_abs_diff(first.c, first.expect);
  EXPECT_TRUE(gemm_matches(second.c, second.expect, 48))
      << "max diff " << Matrix::max_abs_diff(second.c, second.expect);
}

TEST(Serve, WorkerThrowFailsOnlyThatRequest) {
  GemmServer server(small_config());
  Product faulty(32, 32, 32, small_config().q, 5);
  GemmRequest request = faulty.request(0);
  request.fault = FaultInjection::kThrowError;
  const GemmResponse failed = server.run(request);
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("injected worker fault"), std::string::npos);

  // The contract under test: a worker throw is owned by the dispatcher and
  // fails one request — the pool and the server keep serving.
  Product healthy(32, 32, 32, small_config().q, 6);
  const GemmResponse ok = server.run(healthy.request(0));
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_TRUE(gemm_matches(healthy.c, healthy.expect, 32));

  // Same for non-std::exception throws (the catch (...) arm).
  Product weird(32, 32, 32, small_config().q, 7);
  GemmRequest unknown = weird.request(1);
  unknown.fault = FaultInjection::kThrowUnknown;
  const GemmResponse failed2 = server.run(unknown);
  EXPECT_FALSE(failed2.ok);
  EXPECT_NE(failed2.error.find("non-standard exception"), std::string::npos);

  Product again(32, 32, 32, small_config().q, 8);
  const GemmResponse ok2 = server.run(again.request(1));
  ASSERT_TRUE(ok2.ok) << ok2.error;
  EXPECT_TRUE(gemm_matches(again.c, again.expect, 32));

  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.failed, 2);
  EXPECT_EQ(counters.completed, 2);
}

TEST(Serve, InvalidSubmissionsAreRejectedUpfront) {
  GemmServer server(small_config());
  Product prod(32, 32, 32, small_config().q, 1);

  GemmRequest bad_tenant = prod.request(-1);
  EXPECT_EQ(server.submit(bad_tenant).status, SubmitStatus::kRejectedInvalid);
  bad_tenant.tenant = server.max_tenants();
  EXPECT_EQ(server.submit(bad_tenant).status, SubmitStatus::kRejectedInvalid);

  GemmRequest null_operand = prod.request(0);
  null_operand.c = nullptr;
  EXPECT_EQ(server.submit(null_operand).status,
            SubmitStatus::kRejectedInvalid);

  Matrix wrong(8, 8);
  GemmRequest mismatched = prod.request(0);
  mismatched.b = &wrong;  // A is 32x32, B must be 32xN
  EXPECT_EQ(server.submit(mismatched).status, SubmitStatus::kRejectedInvalid);

  const GemmServer::Counters counters = server.counters();
  EXPECT_EQ(counters.submitted, 4);
  EXPECT_EQ(counters.rejected_invalid, 4);
  EXPECT_EQ(counters.accepted, 0);
}

TEST(Serve, RejectsBadConfig) {
  GemmServer::Config config = small_config();
  config.queue_capacity = 3;  // MpmcRing needs a power of two
  EXPECT_THROW(GemmServer{config}, Error);
  config = small_config();
  config.max_tenants = 0;
  EXPECT_THROW(GemmServer{config}, Error);
  config = small_config();
  config.workers = 0;
  EXPECT_THROW(GemmServer{config}, Error);
}

TEST(Serve, StatsJsonMatchesServeV1Schema) {
  GemmServer::Config config = small_config();
  GemmServer server(config);
  Product ok_prod(32, 32, 32, config.q, 1);
  ASSERT_TRUE(server.run(ok_prod.request(0)).ok);
  Product bad_prod(32, 32, 32, config.q, 2);
  GemmRequest faulty = bad_prod.request(1);
  faulty.fault = FaultInjection::kThrowError;
  ASSERT_FALSE(server.run(faulty).ok);

  const JsonValue doc = json_parse(server.stats_json());
  ASSERT_EQ(doc.type, JsonValue::Type::kObject);
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->string, "mcmm-serve-v1");
  EXPECT_EQ(doc.find("workers")->number, config.workers);
  EXPECT_EQ(doc.find("queue_capacity")->number,
            static_cast<double>(config.queue_capacity));
  EXPECT_EQ(doc.find("max_tenants")->number, config.max_tenants);

  const JsonValue* model = doc.find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->find("q")->number, static_cast<double>(config.q));

  const JsonValue* partitions = doc.find("partitions");
  ASSERT_NE(partitions, nullptr);
  ASSERT_EQ(partitions->array.size(),
            static_cast<std::size_t>(config.max_tenants));
  for (std::size_t k = 0; k < partitions->array.size(); ++k) {
    const JsonValue& part = partitions->array[k];
    EXPECT_EQ(part.find("tenants")->number, static_cast<double>(k + 1));
    ASSERT_NE(part.find("tiling"), nullptr);
    EXPECT_GE(part.find("tiling")->find("lambda")->number, 1.0);
  }

  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find("completed")->number, 1.0);
  EXPECT_EQ(counters->find("failed")->number, 1.0);

  const JsonValue* latency = doc.find("latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->find("count")->number, 2.0);
  EXPECT_GE(latency->find("p99")->number, latency->find("p50")->number);

  const JsonValue* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_EQ(requests->array.size(), 2u);
  const JsonValue& good = requests->array[0];
  EXPECT_TRUE(good.find("ok")->boolean);
  EXPECT_EQ(good.find("error"), nullptr);  // only failures carry an error
  ASSERT_NE(good.find("trace"), nullptr);
  EXPECT_GT(good.find("trace")->find("spans")->number, 0.0);
  const JsonValue& bad = requests->array[1];
  EXPECT_FALSE(bad.find("ok")->boolean);
  ASSERT_NE(bad.find("error"), nullptr);
  EXPECT_NE(bad.find("error")->string.find("injected"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The `lu` verb: one factorization = one admission unit through the
// kernel-routed parallel_lu_factor.

TEST(ServeLu, RunFactorsInPlaceWithTraceSummary) {
  GemmServer server(small_config());
  Matrix a = diagonally_dominant_matrix(48, 17);
  Matrix oracle = a;
  lu_factor_unblocked(oracle);

  LuRequest req;
  req.tenant = 0;
  req.a = &a;
  const LuResponse response = server.run_lu(req);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.n, 48);
  // q = 0 inherits the solo partition's tiling.
  EXPECT_EQ(response.q, server.partition(1).tiling.q);
  EXPECT_GE(response.queue_ms, 0.0);
  EXPECT_GT(response.exec_ms, 0.0);
  // The factorization ran through the engine: pack/micro-kernel spans
  // plus the LU-only factor phase in the per-request summary.
  EXPECT_GT(response.trace.spans, 0);
  EXPECT_GT(response.trace.wall_ms, 0.0);
  EXPECT_GT(response.trace.factor_ms, 0.0);
  EXPECT_LT(Matrix::max_abs_diff(a, oracle),
            gemm_tolerance(48) * 48);
}

TEST(ServeLu, RejectsInvalidRequests) {
  GemmServer server(small_config());
  LuRequest null_matrix;
  null_matrix.tenant = 0;
  EXPECT_EQ(server.submit_lu(null_matrix).status,
            SubmitStatus::kRejectedInvalid);

  Matrix rect(4, 6);
  LuRequest non_square;
  non_square.tenant = 0;
  non_square.a = &rect;
  EXPECT_EQ(server.submit_lu(non_square).status,
            SubmitStatus::kRejectedInvalid);

  Matrix square = diagonally_dominant_matrix(8, 1);
  LuRequest bad_tenant;
  bad_tenant.tenant = 99;
  bad_tenant.a = &square;
  EXPECT_EQ(server.submit_lu(bad_tenant).status,
            SubmitStatus::kRejectedInvalid);

  LuRequest bad_q;
  bad_q.tenant = 0;
  bad_q.a = &square;
  bad_q.q = -1;
  EXPECT_EQ(server.submit_lu(bad_q).status, SubmitStatus::kRejectedInvalid);
}

TEST(ServeLu, ZeroPivotFailsRequestNotServer) {
  GemmServer server(small_config());
  Matrix bad = diagonally_dominant_matrix(24, 3);
  bad.at(0, 0) = 0.0;
  LuRequest req;
  req.tenant = 0;
  req.a = &bad;
  req.q = 8;
  const LuResponse failed = server.run_lu(req);
  EXPECT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("pivot"), std::string::npos) << failed.error;

  // The dispatcher and pool survived; the next factorization succeeds and
  // the stats document carries both outcomes in the "lu" array.
  Matrix good = diagonally_dominant_matrix(24, 4);
  LuRequest ok_req;
  ok_req.tenant = 0;
  ok_req.a = &good;
  EXPECT_TRUE(server.run_lu(ok_req).ok);

  const JsonValue doc = json_parse(server.stats_json());
  const JsonValue* lu = doc.find("lu");
  ASSERT_NE(lu, nullptr);
  ASSERT_EQ(lu->array.size(), 2u);
  EXPECT_FALSE(lu->array[0].find("ok")->boolean);
  ASSERT_NE(lu->array[0].find("error"), nullptr);
  EXPECT_TRUE(lu->array[1].find("ok")->boolean);
  ASSERT_NE(lu->array[1].find("trace"), nullptr);
  EXPECT_GT(lu->array[1].find("trace")->find("spans")->number, 0.0);
  EXPECT_GE(lu->array[1].find("trace")->find("trsm_ms")->number, 0.0);
  EXPECT_GE(lu->array[1].find("trace")->find("factor_ms")->number, 0.0);
}

}  // namespace
}  // namespace mcmm::serve
