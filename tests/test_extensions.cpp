// Tests for the library's extensions beyond the paper's six schedules:
// Cannon's algorithm, the linear-distribution ablation of Distributed
// Opt., and the interleaving-granularity knob.
#include <gtest/gtest.h>

#include "alg/cannon.hpp"
#include "alg/distributed_opt.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "exp/experiment.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::FmaCoverage;
using mcmm::testing::paper_quadcore;

// ---------------------------------------------------------------------------
// Cannon
// ---------------------------------------------------------------------------

TEST(Cannon, CoversIterationSpaceExactlyOnce) {
  for (const Problem& prob :
       {Problem{8, 8, 8}, Problem{13, 7, 5}, Problem{1, 1, 1},
        Problem{3, 17, 11}}) {
    Machine machine(paper_quadcore(), Policy::kLru);
    FmaCoverage coverage(machine);
    Cannon().run(machine, prob, paper_quadcore());
    EXPECT_TRUE(coverage.complete(prob)) << prob.describe();
  }
}

TEST(Cannon, BalancesWorkAcrossTheTorus) {
  Machine machine(paper_quadcore(), Policy::kLru);
  const Problem prob{8, 8, 8};
  Cannon().run(machine, prob, paper_quadcore());
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(machine.stats().fmas[c], prob.fmas() / 4);
  }
}

TEST(Cannon, RefusesIdealAndNonSquareP) {
  Machine ideal(paper_quadcore(), Policy::kIdeal);
  EXPECT_THROW(Cannon().run(ideal, Problem::square(4), paper_quadcore()),
               Error);
  MachineConfig p2 = paper_quadcore();
  p2.p = 2;
  Machine machine(p2, Policy::kLru);
  EXPECT_THROW(Cannon().run(machine, Problem::square(4), p2), Error);
}

TEST(Cannon, TileSequencingPaysOffOnceCoresStopThrashingEachOther) {
  // Cannon consumes one super-tile pair at a time (contiguous k) where
  // Outer Product sweeps the whole C every step.  Under fine lockstep
  // interleaving the four cores' tile streams evict each other from the
  // shared cache and the advantage evaporates; with coarse interleaving
  // (cores drift through their tiles independently) Cannon's B tile stays
  // hot and it clearly beats Outer Product.
  const Problem prob = Problem::square(48);
  const MachineConfig cfg = paper_quadcore();

  Machine cannon_lockstep(cfg, Policy::kLru);
  Cannon().run(cannon_lockstep, prob, cfg);
  Machine outer_lockstep(cfg, Policy::kLru);
  make_algorithm("outer-product")->run(outer_lockstep, prob, cfg);
  EXPECT_LT(static_cast<double>(cannon_lockstep.stats().ms()),
            1.1 * static_cast<double>(outer_lockstep.stats().ms()))
      << "lockstep: roughly on par";

  Machine cannon_drift(cfg, Policy::kLru);
  cannon_drift.set_interleave_chunk(4096);
  Cannon().run(cannon_drift, prob, cfg);
  Machine outer_drift(cfg, Policy::kLru);
  outer_drift.set_interleave_chunk(4096);
  make_algorithm("outer-product")->run(outer_drift, prob, cfg);
  EXPECT_LT(cannon_drift.stats().ms() * 2, outer_drift.stats().ms())
      << "drifting cores: Cannon's tile locality pays off";
}

TEST(Cannon, StillWorseThanTheCacheAwareSchedules) {
  const Problem prob = Problem::square(48);
  const MachineConfig cfg = paper_quadcore();
  const auto cannon = run_experiment("cannon", prob, cfg, Setting::kLruFull);
  const auto shared =
      run_experiment("shared-opt", prob, cfg, Setting::kLruFull);
  EXPECT_GT(cannon.ms, shared.ms)
      << "cache-oblivious tiling cannot match the maximum-reuse layout";
}

// ---------------------------------------------------------------------------
// DistributedOpt linear-distribution ablation
// ---------------------------------------------------------------------------

TEST(LinearDistribution, CoversIterationSpace) {
  const MachineConfig cfg = paper_quadcore();  // mu=4, sqrt(p)=2: 2 | 4
  for (const Problem& prob : {Problem{8, 8, 8}, Problem{13, 9, 5}}) {
    Machine machine(cfg, Policy::kLru);
    FmaCoverage coverage(machine);
    DistributedOpt(CTileDistribution::kLinear).run(machine, prob, cfg);
    EXPECT_TRUE(coverage.complete(prob)) << prob.describe();
  }
}

TEST(LinearDistribution, IdealDrainsAndRespectsCapacity) {
  const MachineConfig cfg = paper_quadcore();
  Machine machine(cfg, Policy::kIdeal);
  DistributedOpt(CTileDistribution::kLinear)
      .run(machine, Problem{16, 16, 8}, cfg);
  machine.assert_empty();
}

TEST(LinearDistribution, CostsSqrtPMoreAFetchesPerCore) {
  // 2-D cyclic: 2*mu distributed loads per core per k (mu of A + mu of B).
  // Linear strips: tile of A + strip of B = sqrt(p)*mu + mu/sqrt(p).
  // For p=4, mu=4: 10 vs 8 -> MD ratio 1.25 exactly on divisible sizes.
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{16, 16, 16};
  Machine cyclic(cfg, Policy::kIdeal);
  DistributedOpt(CTileDistribution::k2DCyclic).run(cyclic, prob, cfg);
  Machine linear(cfg, Policy::kIdeal);
  DistributedOpt(CTileDistribution::kLinear).run(linear, prob, cfg);

  EXPECT_EQ(cyclic.stats().ms(), linear.stats().ms())
      << "shared-level traffic is identical";
  EXPECT_GT(linear.stats().md(), cyclic.stats().md());
  // Streaming parts: cyclic 2*mu*z, linear (sqrt(p)*mu + mu/sqrt(p))*z per
  // tile per core; C loads identical (mu^2 per tile).
  const std::int64_t tiles = (16 / 8) * (16 / 8);
  const std::int64_t cyclic_expect = tiles * (16 + 16 * 8);
  const std::int64_t linear_expect = tiles * (16 + 16 * 10);
  EXPECT_EQ(cyclic.stats().md(), cyclic_expect);
  EXPECT_EQ(linear.stats().md(), linear_expect);
}

TEST(LinearDistribution, RegistryNameRoundTrips) {
  const AlgorithmPtr alg = make_algorithm("distributed-opt-linear");
  EXPECT_EQ(alg->name(), "distributed-opt-linear");
  EXPECT_TRUE(alg->supports_ideal());
}

TEST(LinearDistribution, RejectedWhenStripsDoNotDivide) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 13;  // mu = 3, not divisible by sqrt(p) = 2
  Machine machine(cfg, Policy::kLru);
  EXPECT_THROW(DistributedOpt(CTileDistribution::kLinear)
                   .run(machine, Problem::square(6), cfg),
               Error);
}

// ---------------------------------------------------------------------------
// Rectangular grids (non-square p)
// ---------------------------------------------------------------------------

TEST(RectangularGrids, DistributedOptExactOnTwoByFourGrid) {
  // p = 8: grid 2 x 4, mu = 4 -> tiles 8 x 16.  Divisible sizes: the
  // generalised closed forms must hold as integers:
  //   MS = mn + mnz/(r mu) + mnz/(c mu),  MD = mn/p + 2mnz/(p mu).
  MachineConfig cfg;
  cfg.p = 8;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob{16, 32, 8};  // multiples of tile_rows=8, tile_cols=16
  Machine machine(cfg, Policy::kIdeal);
  make_algorithm("distributed-opt")->run(machine, prob, cfg);
  const std::int64_t mn = prob.m * prob.n;
  const std::int64_t mnz = prob.fmas();
  EXPECT_EQ(machine.stats().ms(), mn + mnz / (2 * 4) + mnz / (4 * 4));
  EXPECT_EQ(machine.stats().md(), mn / 8 + 2 * mnz / (8 * 4));
  const MissPrediction pred =
      predict_distributed_opt(prob, cfg.p, distributed_opt_params(cfg));
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  for (int c = 1; c < cfg.p; ++c) {
    EXPECT_EQ(machine.stats().dist_misses[static_cast<std::size_t>(c)],
              machine.stats().dist_misses[0])
        << "perfect balance on the rectangular grid";
  }
}

TEST(RectangularGrids, TradeoffExactOnTwoByFourGrid) {
  MachineConfig cfg;
  cfg.p = 8;
  cfg.cs = 977;
  cfg.cd = 21;
  const TradeoffParams params = tradeoff_params(cfg);
  ASSERT_EQ(params.grain(), 16);  // mu * lcm(2,4)
  ASSERT_EQ(params.alpha % params.grain(), 0);
  ASSERT_FALSE(params.persistent_c());
  const Problem prob{params.alpha, params.alpha * 2, params.beta * 2};
  Machine machine(cfg, Policy::kIdeal);
  make_algorithm("tradeoff")->run(machine, prob, cfg);
  const MissPrediction pred = predict_tradeoff(prob, cfg.p, params);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
}

TEST(RectangularGrids, AllGridSchedulesCoverOnPrimeP) {
  MachineConfig cfg;
  cfg.p = 5;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob{11, 13, 7};
  for (const char* name : {"distributed-opt", "tradeoff", "outer-product"}) {
    Machine machine(cfg, Policy::kLru);
    FmaCoverage coverage(machine);
    make_algorithm(name)->run(machine, prob, cfg);
    EXPECT_TRUE(coverage.complete(prob)) << name << " on p=5 (1x5 grid)";
  }
}

TEST(ExtendedRegistry, SupersetOfPaperNames) {
  const auto base = algorithm_names();
  const auto ext = extended_algorithm_names();
  EXPECT_GT(ext.size(), base.size());
  for (const auto& name : ext) {
    EXPECT_NO_THROW(make_algorithm(name)) << name;
  }
}

// ---------------------------------------------------------------------------
// Interleaving granularity
// ---------------------------------------------------------------------------

TEST(InterleaveChunk, DefaultIsLockstep) {
  Machine machine(paper_quadcore(), Policy::kLru);
  EXPECT_EQ(machine.interleave_chunk(), 1);
  EXPECT_THROW(machine.set_interleave_chunk(0), Error);
}

TEST(InterleaveChunk, DoesNotChangeWorkOrCoverage) {
  const Problem prob{12, 12, 6};
  for (const std::int64_t chunk : {1, 4, 64, 100000}) {
    Machine machine(paper_quadcore(), Policy::kLru);
    machine.set_interleave_chunk(chunk);
    FmaCoverage coverage(machine);
    make_algorithm("shared-opt")->run(machine, prob, paper_quadcore());
    EXPECT_TRUE(coverage.complete(prob)) << "chunk " << chunk;
  }
}

TEST(InterleaveChunk, IdealCountsAreInsensitive) {
  // IDEAL misses are decided by explicit loads; interleaving is irrelevant.
  const Problem prob{16, 16, 8};
  std::int64_t base_ms = -1, base_md = -1;
  for (const std::int64_t chunk : {1, 7, 1000}) {
    Machine machine(paper_quadcore(), Policy::kIdeal);
    machine.set_interleave_chunk(chunk);
    make_algorithm("distributed-opt")->run(machine, prob, paper_quadcore());
    if (base_ms < 0) {
      base_ms = machine.stats().ms();
      base_md = machine.stats().md();
    } else {
      EXPECT_EQ(machine.stats().ms(), base_ms);
      EXPECT_EQ(machine.stats().md(), base_md);
    }
  }
}

TEST(InterleaveChunk, LruSharedMissesCanShift) {
  // Under LRU the shared cache sees a different merge order; the counts may
  // move (that is the point of the knob).  Distributed caches are private,
  // so per-core misses must stay identical regardless.
  const Problem prob{24, 24, 24};
  Machine lockstep(paper_quadcore(), Policy::kLru);
  make_algorithm("shared-equal")->run(lockstep, prob, paper_quadcore());
  Machine drifted(paper_quadcore(), Policy::kLru);
  drifted.set_interleave_chunk(512);
  make_algorithm("shared-equal")->run(drifted, prob, paper_quadcore());
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(drifted.stats().dist_misses[static_cast<std::size_t>(c)],
              lockstep.stats().dist_misses[static_cast<std::size_t>(c)]);
  }
  EXPECT_GT(drifted.stats().ms(), 0);
}

}  // namespace
}  // namespace mcmm
