// Shared helpers for the algorithm and integration test suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>

#include "alg/registry.hpp"
#include "sim/machine.hpp"
#include "sim/problem.hpp"

namespace mcmm::testing {

/// Records every (i,j,k) block FMA and on which core it ran; verifies the
/// schedule covers the whole iteration space exactly once.
class FmaCoverage {
public:
  explicit FmaCoverage(Machine& machine) {
    machine.set_fma_observer(
        [this](int core, std::int64_t i, std::int64_t j, std::int64_t k) {
          const auto [it, inserted] = seen_.emplace(i, j, k);
          (void)it;
          if (!inserted) ++duplicates_;
          cores_.insert(core);
        });
  }

  /// Every (i,j,k) in [0,m) x [0,n) x [0,z) exactly once?
  ::testing::AssertionResult complete(const Problem& prob) const {
    if (duplicates_ > 0) {
      return ::testing::AssertionFailure()
             << duplicates_ << " duplicate block FMAs";
    }
    const auto expect =
        static_cast<std::size_t>(prob.m * prob.n * prob.z);
    if (seen_.size() != expect) {
      return ::testing::AssertionFailure()
             << "covered " << seen_.size() << " of " << expect
             << " block FMAs";
    }
    for (std::int64_t i = 0; i < prob.m; ++i) {
      for (std::int64_t j = 0; j < prob.n; ++j) {
        for (std::int64_t k = 0; k < prob.z; ++k) {
          if (seen_.find({i, j, k}) == seen_.end()) {
            return ::testing::AssertionFailure()
                   << "missing FMA (" << i << "," << j << "," << k << ")";
          }
        }
      }
    }
    return ::testing::AssertionSuccess();
  }

  int cores_used() const { return static_cast<int>(cores_.size()); }

private:
  std::set<std::tuple<std::int64_t, std::int64_t, std::int64_t>> seen_;
  std::set<int> cores_;
  std::int64_t duplicates_ = 0;
};

/// The paper's quad-core with unit bandwidths and q=32 capacities.
inline MachineConfig paper_quadcore() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  return cfg;
}

/// A small machine for fast exhaustive tests (CS=91 -> lambda=9,
/// CD=21 -> mu=4, still CS >= p*CD).
inline MachineConfig small_quadcore() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 91;
  cfg.cd = 21;
  return cfg;
}

}  // namespace mcmm::testing
