// Element-level inner-kernel simulation: the paper's 3q^2 <= S_D
// assumption and the q range it recommends.
#include "inner/kernel_sim.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcmm {
namespace {

LineCacheConfig l1_32k() {
  LineCacheConfig cfg;
  cfg.size_bytes = 32 * 1024;
  cfg.line_bytes = 64;
  cfg.ways = 8;
  return cfg;
}

// ---------------------------------------------------------------------------
// LineCache
// ---------------------------------------------------------------------------

TEST(LineCache, ConfigValidation) {
  LineCacheConfig cfg = l1_32k();
  EXPECT_NO_THROW(cfg.validate());
  cfg.line_bytes = 48;  // not a power of two
  EXPECT_THROW(cfg.validate(), Error);
  cfg = l1_32k();
  cfg.ways = 7;  // does not divide 512 lines
  EXPECT_THROW(cfg.validate(), Error);
  cfg = l1_32k();
  EXPECT_EQ(cfg.num_lines(), 512);
  EXPECT_EQ(cfg.num_sets(), 64);
}

TEST(LineCache, SameLineHitsDifferentLineMisses) {
  LineCache c(l1_32k());
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(8)) << "same 64-byte line";
  EXPECT_FALSE(c.access(63));
  EXPECT_TRUE(c.access(64)) << "next line";
  EXPECT_EQ(c.misses(), 2);
  EXPECT_EQ(c.accesses(), 4);
}

TEST(LineCache, LruWithinSet) {
  // Direct construction of conflict: addresses that map to the same set
  // are multiples of num_sets * line_bytes apart.
  LineCacheConfig cfg = l1_32k();
  cfg.ways = 2;
  LineCache c(cfg);
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cfg.num_sets() * cfg.line_bytes);
  EXPECT_TRUE(c.access(0 * stride));
  EXPECT_TRUE(c.access(1 * stride));
  EXPECT_FALSE(c.access(0 * stride)) << "both ways resident";
  EXPECT_TRUE(c.access(2 * stride)) << "evicts line 1 (LRU)";
  EXPECT_FALSE(c.access(0 * stride));
  EXPECT_TRUE(c.access(1 * stride)) << "line 1 was the victim";
}

TEST(LineCache, MissRateAndReset) {
  LineCache c(l1_32k());
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
  c.reset_stats();
  EXPECT_EQ(c.misses(), 0);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.0);
}

// ---------------------------------------------------------------------------
// Kernel simulation
// ---------------------------------------------------------------------------

TEST(InnerKernel, FitsPredicate) {
  const LineCacheConfig l1 = l1_32k();
  EXPECT_TRUE(kernel_fits(l1, 32));   // 3*32^2*8 = 24 KiB
  EXPECT_FALSE(kernel_fits(l1, 40));  // 37.5 KiB
}

TEST(InnerKernel, WorkAndAccessCounts) {
  const InnerKernelStats s =
      simulate_inner_kernel(l1_32k(), 16, LoopOrder::kIKJ, 16);
  EXPECT_EQ(s.fmas, 16 * 16 * 16);
  EXPECT_EQ(s.accesses, 3 * s.fmas);
  EXPECT_GE(s.misses, s.cold_lines);
}

TEST(InnerKernel, ContiguousBlocksColdFloor) {
  // ld == q and q*8 a multiple of the line size: exactly 3q^2/8 lines.
  const InnerKernelStats s =
      simulate_inner_kernel(l1_32k(), 16, LoopOrder::kIKJ, 16);
  EXPECT_EQ(s.cold_lines, 3 * 16 * 16 * 8 / 64);
}

TEST(InnerKernel, ResidentKernelSeesOnlyColdMisses) {
  // The paper's assumption: with 3q^2 elements resident, the kernel's
  // misses are compulsory only — for every loop order.
  const LineCacheConfig l1 = l1_32k();
  for (const LoopOrder order : all_loop_orders()) {
    const InnerKernelStats s = simulate_inner_kernel(l1, 24, order, 24);
    ASSERT_TRUE(kernel_fits(l1, 24));
    EXPECT_EQ(s.misses, s.cold_lines) << to_string(order);
  }
}

TEST(InnerKernel, PowerOfTwoLeadingDimensionConflicts) {
  // The classic leading-dimension pathology: ld = 512 doubles puts every
  // row exactly 4096 bytes apart — a multiple of num_sets * line_bytes —
  // so ALL rows of a block land in the same handful of sets and an 8-way
  // cache thrashes on a footprint that nominally fits with room to spare.
  // Padding the leading dimension to 520 restores the compulsory floor.
  const LineCacheConfig l1 = l1_32k();
  const InnerKernelStats pow2 =
      simulate_inner_kernel(l1, 16, LoopOrder::kIKJ, 512);
  EXPECT_GT(pow2.misses, 3 * pow2.cold_lines)
      << "conflict misses dominate despite the tiny footprint";
  const InnerKernelStats padded =
      simulate_inner_kernel(l1, 16, LoopOrder::kIKJ, 520);
  EXPECT_EQ(padded.misses, padded.cold_lines)
      << "a padded leading dimension spreads rows across the sets";
}

TEST(InnerKernel, OversizedKernelThrashes) {
  // q = 64: 96 KiB footprint on a 32 KiB cache — capacity misses appear
  // for every order; the i-outer orders stream B q times.
  const LineCacheConfig l1 = l1_32k();
  ASSERT_FALSE(kernel_fits(l1, 64));
  const InnerKernelStats s =
      simulate_inner_kernel(l1, 64, LoopOrder::kIJK, 64);
  EXPECT_GT(s.misses, 2 * s.cold_lines);
}

TEST(InnerKernel, RowFriendlyOrdersBeatColumnOrdersWhenThrashing) {
  // Row-major layout: the j-inner orders (ikj/kij) walk B and C rows
  // line by line; the i-inner orders (jki/kji) stride down columns and
  // waste each fetched line when the working set exceeds the cache.
  const LineCacheConfig l1 = l1_32k();
  const std::int64_t q = 64;
  const InnerKernelStats row =
      simulate_inner_kernel(l1, q, LoopOrder::kIKJ, q);
  const InnerKernelStats col =
      simulate_inner_kernel(l1, q, LoopOrder::kJKI, q);
  EXPECT_LT(row.misses * 2, col.misses);
}

TEST(InnerKernel, Deterministic) {
  const InnerKernelStats a =
      simulate_inner_kernel(l1_32k(), 32, LoopOrder::kKIJ, 48);
  const InnerKernelStats b =
      simulate_inner_kernel(l1_32k(), 32, LoopOrder::kKIJ, 48);
  EXPECT_EQ(a.misses, b.misses);
}

TEST(InnerKernel, Validation) {
  EXPECT_THROW(simulate_inner_kernel(l1_32k(), 0, LoopOrder::kIJK, 4), Error);
  EXPECT_THROW(simulate_inner_kernel(l1_32k(), 8, LoopOrder::kIJK, 4), Error);
}

}  // namespace
}  // namespace mcmm
