// Formula exactness for Algorithm 2 (Distributed Opt): under IDEAL with
// divisible sizes, measured MS and MD equal Section 3.2's closed forms.
#include <gtest/gtest.h>

#include "alg/distributed_opt.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

// p=4, CD=21 -> mu=4, tile = 8.
MachineConfig mu4_cfg() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  return cfg;
}

struct Dims {
  std::int64_t m, n, z;
};

class DistributedOptExact : public ::testing::TestWithParam<Dims> {};

TEST_P(DistributedOptExact, IdealMatchesClosedFormExactly) {
  const Dims d = GetParam();
  const MachineConfig cfg = mu4_cfg();
  const Problem prob{d.m, d.n, d.z};
  const DistributedOptParams params = distributed_opt_params(cfg);
  ASSERT_EQ(params.mu, 4);
  ASSERT_EQ(params.tile_rows(), 8);
  ASSERT_EQ(params.tile_cols(), 8);

  Machine machine(cfg, Policy::kIdeal);
  DistributedOpt().run(machine, prob, cfg);

  const MissPrediction pred = predict_distributed_opt(prob, cfg.p, params);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
  for (int c = 1; c < cfg.p; ++c) {
    EXPECT_EQ(machine.stats().dist_misses[c], machine.stats().dist_misses[0]);
    EXPECT_EQ(machine.stats().fmas[c], machine.stats().fmas[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DivisibleSizes, DistributedOptExact,
    ::testing::Values(Dims{8, 8, 1}, Dims{8, 8, 8}, Dims{16, 8, 5},
                      Dims{8, 24, 3}, Dims{16, 16, 16}, Dims{32, 16, 10}),
    [](const ::testing::TestParamInfo<Dims>& p_info) {
      std::string name = "m";
      name += std::to_string(p_info.param.m);
      name += "n";
      name += std::to_string(p_info.param.n);
      name += "z";
      name += std::to_string(p_info.param.z);
      return name;
    });

TEST(DistributedOpt, CSubBlockLoadedOncePerTile) {
  // The mn/p term: each core loads each of its C blocks exactly once.
  const MachineConfig cfg = mu4_cfg();
  const Problem prob{16, 16, 7};
  Machine machine(cfg, Policy::kIdeal);
  DistributedOpt().run(machine, prob, cfg);
  const std::int64_t md = machine.stats().md();
  // Subtract the A/B streaming part (2 mu per k per tile per core).
  const std::int64_t tiles = (16 / 8) * (16 / 8);
  EXPECT_EQ(md - tiles * prob.z * 2 * 4, tiles * 4 * 4)
      << "each core loads mu^2 C blocks once per tile";
}

TEST(DistributedOpt, BeatsSharedOptOnDistributedMisses) {
  const MachineConfig cfg = mu4_cfg();
  const Problem prob{24, 24, 24};
  Machine m_dist(cfg, Policy::kIdeal);
  DistributedOpt().run(m_dist, prob, cfg);
  Machine m_shared(cfg, Policy::kIdeal);
  make_algorithm("shared-opt")->run(m_shared, prob, cfg);
  EXPECT_LT(m_dist.stats().md(), m_shared.stats().md());
  EXPECT_GT(m_dist.stats().ms(), m_shared.stats().ms())
      << "...at the cost of more shared misses";
}

TEST(DistributedOpt, MuOneRegimeStillCorrect) {
  // CD = 6 -> mu = 1 (the paper's q=64 case where the algorithm degrades).
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 245;
  cfg.cd = 6;
  const Problem prob{6, 6, 6};
  Machine machine(cfg, Policy::kIdeal);
  mcmm::testing::FmaCoverage coverage(machine);
  DistributedOpt().run(machine, prob, cfg);
  EXPECT_TRUE(coverage.complete(prob));
  const auto params = distributed_opt_params(cfg);
  EXPECT_EQ(params.mu, 1);
  const MissPrediction pred = predict_distributed_opt(prob, cfg.p, params);
  EXPECT_EQ(machine.stats().ms(), static_cast<std::int64_t>(pred.ms));
  EXPECT_EQ(machine.stats().md(), static_cast<std::int64_t>(pred.md));
}

TEST(DistributedOpt, RejectsMismatchedCoreCount) {
  MachineConfig declared = mu4_cfg();
  MachineConfig physical = mu4_cfg();
  physical.p = 9;
  physical.cs = 9 * 21;
  Machine machine(physical, Policy::kIdeal);
  EXPECT_THROW(DistributedOpt().run(machine, Problem::square(8), declared),
               Error);
}

}  // namespace
}  // namespace mcmm
