#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "alg/registry.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

Trace record_algorithm(const std::string& name, const Problem& prob,
                       const MachineConfig& cfg) {
  Machine machine(cfg, Policy::kLru);
  Trace trace;
  record_into(machine, trace);
  make_algorithm(name)->run(machine, prob, cfg);
  return trace;
}

TEST(Trace, AppendAndInspect) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.append(0, BlockId::a(1, 2), Rw::kRead);
  t.append(1, BlockId::c(3, 4), Rw::kWrite);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].block(), BlockId::a(1, 2));
  EXPECT_EQ(t[0].rw(), Rw::kRead);
  EXPECT_EQ(t[0].core, 0);
  EXPECT_EQ(t[1].block(), BlockId::c(3, 4));
  EXPECT_EQ(t[1].rw(), Rw::kWrite);
}

TEST(Trace, RecordsEveryFmaAsThreeAccesses) {
  const Problem prob{6, 6, 6};
  const Trace trace = record_algorithm("shared-opt", prob, paper_quadcore());
  EXPECT_EQ(static_cast<std::int64_t>(trace.size()), 3 * prob.fmas());
}

TEST(Trace, StatsBreakDownByMatrixAndCore) {
  const Problem prob{8, 8, 4};
  const Trace trace = record_algorithm("shared-opt", prob, paper_quadcore());
  const TraceStats stats = trace.stats();
  EXPECT_EQ(stats.accesses, 3 * prob.fmas());
  EXPECT_EQ(stats.per_matrix[0], prob.fmas()) << "one A read per FMA";
  EXPECT_EQ(stats.per_matrix[1], prob.fmas()) << "one B read per FMA";
  EXPECT_EQ(stats.per_matrix[2], prob.fmas()) << "one C write per FMA";
  EXPECT_EQ(stats.reads, 2 * prob.fmas());
  EXPECT_EQ(stats.writes, prob.fmas());
  EXPECT_EQ(stats.distinct_blocks,
            prob.m * prob.z + prob.z * prob.n + prob.m * prob.n);
  ASSERT_EQ(stats.per_core.size(), 4u);
  std::int64_t total = 0;
  for (const auto c : stats.per_core) total += c;
  EXPECT_EQ(total, stats.accesses);
}

TEST(Trace, FilterCoreKeepsOnlyThatCore) {
  const Problem prob{8, 8, 2};
  const Trace trace = record_algorithm("shared-opt", prob, paper_quadcore());
  std::int64_t sum = 0;
  for (int c = 0; c < 4; ++c) {
    const Trace sub = trace.filter_core(c);
    for (std::size_t i = 0; i < sub.size(); ++i) EXPECT_EQ(sub[i].core, c);
    sum += static_cast<std::int64_t>(sub.size());
  }
  EXPECT_EQ(sum, static_cast<std::int64_t>(trace.size()));
}

TEST(Trace, ReplayReproducesMissCountsExactly) {
  const Problem prob{10, 10, 10};
  const MachineConfig cfg = paper_quadcore();

  Machine original(cfg, Policy::kLru);
  Trace trace;
  record_into(original, trace);
  make_algorithm("tradeoff")->run(original, prob, cfg);

  Machine replayed(cfg, Policy::kLru);
  trace.replay(replayed);

  EXPECT_EQ(replayed.stats().ms(), original.stats().ms());
  EXPECT_EQ(replayed.stats().md(), original.stats().md());
  for (int c = 0; c < cfg.p; ++c) {
    EXPECT_EQ(replayed.stats().dist_misses[c],
              original.stats().dist_misses[c]);
  }
}

TEST(Trace, ReplayOntoSmallerMachineRejected) {
  const Trace trace =
      record_algorithm("shared-opt", Problem{4, 4, 4}, paper_quadcore());
  MachineConfig tiny;
  tiny.p = 1;
  tiny.cs = 8;
  tiny.cd = 3;
  Machine machine(tiny, Policy::kLru);
  EXPECT_THROW(trace.replay(machine), Error);
}

TEST(Trace, SaveLoadRoundTrip) {
  const Problem prob{5, 7, 3};
  const Trace trace = record_algorithm("shared-equal", prob, paper_quadcore());
  const std::string path = ::testing::TempDir() + "/mcmm_trace_roundtrip.bin";
  trace.save(path);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].block_bits, trace[i].block_bits);
    EXPECT_EQ(loaded[i].core, trace[i].core);
    EXPECT_EQ(loaded[i].is_write, trace[i].is_write);
  }
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/mcmm_trace_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace", f);
  std::fclose(f);
  EXPECT_THROW(Trace::load(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW(Trace::load("/nonexistent/dir/file.bin"), Error);
}

TEST(Trace, EmptyTraceRoundTrips) {
  Trace t;
  const std::string path = ::testing::TempDir() + "/mcmm_trace_empty.bin";
  t.save(path);
  EXPECT_EQ(Trace::load(path).size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcmm
