#include "gemm/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_DOUBLE_EQ(m.at(2, 3), 1.5);
  m.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.row_ptr(1)[2], 7.0);
}

TEST(Matrix, SetZero) {
  Matrix m(2, 2, 3.0);
  m.set_zero();
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(m.at(i, j), 0.0);
  }
}

TEST(Matrix, FillRandomIsDeterministicAndBounded) {
  Matrix a(10, 10);
  Matrix b(10, 10);
  a.fill_random(42);
  b.fill_random(42);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.0) << "same seed, same data";
  Matrix c(10, 10);
  c.fill_random(43);
  EXPECT_GT(Matrix::max_abs_diff(a, c), 0.0) << "different seed differs";
  for (std::int64_t i = 0; i < 10; ++i) {
    for (std::int64_t j = 0; j < 10; ++j) {
      EXPECT_LT(std::fabs(a.at(i, j)), 1.0 + 1e-12);
    }
  }
}

TEST(Matrix, FillRandomNotConstant) {
  Matrix a(4, 4);
  a.fill_random(1);
  bool varies = false;
  for (std::int64_t i = 0; i < 4 && !varies; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      if (a.at(i, j) != a.at(0, 0)) {
        varies = true;
        break;
      }
    }
  }
  EXPECT_TRUE(varies);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 3.0);
  Matrix c(2, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), Error);
}

TEST(Matrix, ZeroSizedIsFine) {
  Matrix m(0, 0);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_THROW(Matrix(-1, 2), Error);
}

TEST(Matrix, StorageIs64ByteAligned) {
  // The SIMD micro-kernel issues aligned loads on packed B panels; the
  // AlignedAllocator behind Matrix (and AlignedVector) guarantees 64-byte
  // storage alignment regardless of shape.
  for (const std::int64_t n : {1, 3, 7, 64}) {
    Matrix m(n, n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u) << n;
  }
  AlignedVector v(5);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
}

}  // namespace
}  // namespace mcmm
