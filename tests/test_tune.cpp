// The kernel autotuner (src/tune): the staged search must produce a
// well-formed KernelTuning whose winner is actually runnable, score every
// candidate it reports, and respect the restriction/quick knobs.  The
// searches here run in quick mode at a tiny order, so the suite stays in
// CI-smoke territory on any host.
#include "tune/autotune.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "gemm/kernel.hpp"
#include "gemm/microkernel.hpp"
#include "hw/machine_profile.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

tune::TuneOptions quick_options() {
  tune::TuneOptions opts;
  opts.quick = true;
  opts.repeats = 2;
  return opts;
}

TEST(Autotune, QuickSearchProducesARunnableWinner) {
  const tune::TuneReport report = tune::autotune_kernel(quick_options());
  EXPECT_TRUE(report.best.tuned);
  EXPECT_FALSE(report.best.kernel.empty());
  EXPECT_GE(report.best.kc, 1);
  EXPECT_GE(report.best.prefetch_a, 0);
  EXPECT_GE(report.best.prefetch_b, 0);
  EXPECT_GE(report.best.pack_prefetch, 0);
  EXPECT_GT(report.best.gflops, 0.0);
  EXPECT_FALSE(report.trials.empty());
  // The winner resolves in the registry and a context accepts it.
  EXPECT_NO_THROW(micro_kernel_by_name(report.best.kernel));
  KernelContext ctx(1, report.best);
  EXPECT_EQ(ctx.dispatch_name(), report.best.kernel);
  EXPECT_EQ(ctx.knobs().prefetch_a, report.best.prefetch_a);
  EXPECT_EQ(ctx.knobs().prefetch_b, report.best.prefetch_b);
  EXPECT_EQ(ctx.stream_stores(), report.best.stream_stores);
}

TEST(Autotune, EveryTrialIsScoredAndTheWinnerIsTheFastest) {
  const tune::TuneReport report = tune::autotune_kernel(quick_options());
  double best_gflops = 0;
  for (const tune::TuneTrial& t : report.trials) {
    EXPECT_FALSE(t.kernel.empty());
    EXPECT_GE(t.kc, 1);
    EXPECT_GT(t.ms, 0.0) << t.kernel;
    EXPECT_GT(t.gflops, 0.0) << t.kernel;
    best_gflops = std::max(best_gflops, t.gflops);
  }
  // The staged search re-times its winner as it descends, so the reported
  // best must at least match the best single trial's kernel family.
  EXPECT_GT(report.best.gflops, 0.0);
}

TEST(Autotune, RestrictionToOneKernelIsHonoured) {
  tune::TuneOptions opts = quick_options();
  opts.only_kernel = scalar_micro_kernel().name;
  const tune::TuneReport report = tune::autotune_kernel(opts);
  EXPECT_EQ(report.best.kernel, scalar_micro_kernel().name);
  for (const tune::TuneTrial& t : report.trials) {
    EXPECT_EQ(t.kernel, scalar_micro_kernel().name);
  }
  EXPECT_THROW(
      [] {
        tune::TuneOptions bad;
        bad.quick = true;
        bad.only_kernel = "no-such-kernel";
        tune::autotune_kernel(bad);
      }(),
      Error);
}

TEST(Autotune, RejectsDegenerateOrders) {
  tune::TuneOptions opts;
  opts.order = 8;  // below one register tile at any kc candidate
  EXPECT_THROW(tune::autotune_kernel(opts), Error);
}

TEST(Autotune, WinnerRoundTripsThroughTheMachineProfile) {
  MachineProfile profile;
  profile.topology.logical_cpus = 4;
  profile.topology.line_bytes = 64;
  profile.topology.l1d_bytes = 32 << 10;
  profile.topology.l2_bytes = 256 << 10;
  profile.topology.l2_shared_by = 1;
  profile.topology.l3_bytes = 8 << 20;
  profile.topology.l3_shared_by = 4;
  profile.topology.source = "test";
  profile.kernel_tuning = tune::autotune_kernel(quick_options()).best;

  const std::string text = machine_profile_to_json(profile);
  EXPECT_NE(text.find("\"kernel_tuning\""), std::string::npos);
  // Byte-stable: writer -> parser -> writer is the identity.
  EXPECT_EQ(machine_profile_to_json(machine_profile_from_json(text)), text);
  const MachineProfile back = machine_profile_from_json(text);
  EXPECT_EQ(back.kernel_tuning.kernel, profile.kernel_tuning.kernel);
  EXPECT_EQ(back.kernel_tuning.kc, profile.kernel_tuning.kc);
  // The execution tiling follows the tuned depth.
  EXPECT_EQ(back.tiling().q, profile.kernel_tuning.kc);
}

}  // namespace
}  // namespace mcmm
