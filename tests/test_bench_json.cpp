// Golden tests for the mcmm-bench-v1 JSON schema: the deterministic
// "results" subtree is locked byte-for-byte, key order is stable, the
// document round-trips through the util/json reader, and NaN wall times
// are rejected at the door.
#include "exp/bench_report.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace mcmm {
namespace {

MachineConfig quadcore_q32() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  return cfg;
}

BenchReport golden_report() {
  SeriesTable table("order");
  const auto a = table.add_series("alpha");
  const auto b = table.add_series("beta");
  table.set(a, 8, 1.5);
  table.set(b, 8, 2);
  table.set(a, 16, 3);  // beta missing at order 16 -> null cell

  BenchReport report("golden");
  report.add_table("T", table);
  report.add_point(
      SweepPoint::square("shared-opt", 8, quadcore_q32(), Setting::kIdeal),
      /*ms=*/192, /*md=*/616, /*tdata=*/808, /*wall_ms=*/0.25);
  report.set_requests(/*requests=*/3, /*cache_hits=*/1);
  report.set_timing(/*jobs=*/2, /*total_wall_ms=*/0.5, /*serial_wall_ms=*/1);
  return report;
}

// The schema contract: these exact bytes, for every --jobs value.
constexpr const char* kGoldenResults =
    R"({"schema":"mcmm-bench-v1","bench":"golden","results":{)"
    R"("tables":[{"title":"T","x_label":"order","series":["alpha","beta"],)"
    R"("rows":[{"x":8,"values":[1.5,2]},{"x":16,"values":[3,null]}]}],)"
    R"("points":[{"algorithm":"shared-opt","problem":{"m":8,"n":8,"z":8},)"
    R"("machine":{"p":4,"cs":977,"cd":21,"sigma_s":1,"sigma_d":1},)"
    R"("setting":"IDEAL","ms":192,"md":616,"tdata":808}],)"
    R"("requests":3,"cache_hits":1,"simulations":1}})";

TEST(BenchJson, GoldenResultsBytes) {
  EXPECT_EQ(golden_report().results_json(), kGoldenResults);
}

TEST(BenchJson, TimingLivesOutsideTheDeterministicSubtree) {
  const BenchReport report = golden_report();
  const std::string full = report.to_json();
  EXPECT_EQ(full.find(report.results_json().substr(
                0, report.results_json().size() - 1)),
            0u)
      << "to_json must extend results_json, not reorder it";
  const JsonValue doc = json_parse(full);
  ASSERT_NE(doc.find("timing"), nullptr);
  EXPECT_EQ(json_parse(report.results_json()).find("timing"), nullptr);
  const JsonValue& timing = *doc.find("timing");
  EXPECT_DOUBLE_EQ(timing.find("speedup_vs_serial")->number, 2.0);
  EXPECT_EQ(timing.find("jobs")->number, 2);
  ASSERT_NE(timing.find("point_wall_ms"), nullptr);
  EXPECT_EQ(timing.find("point_wall_ms")->array.size(), 1u);
}

TEST(BenchJson, RoundTripsThroughTheJsonReaderByteForByte) {
  const std::string full = golden_report().to_json();
  EXPECT_EQ(json_serialize(json_parse(full)), full);
  const std::string results = golden_report().results_json();
  EXPECT_EQ(json_serialize(json_parse(results)), results);
}

TEST(BenchJson, KeyOrderIsStable) {
  const JsonValue doc = json_parse(golden_report().to_json());
  ASSERT_EQ(doc.object.size(), 4u);
  EXPECT_EQ(doc.object[0].first, "schema");
  EXPECT_EQ(doc.object[1].first, "bench");
  EXPECT_EQ(doc.object[2].first, "results");
  EXPECT_EQ(doc.object[3].first, "timing");
  const JsonValue& results = doc.object[2].second;
  ASSERT_EQ(results.object.size(), 5u);
  EXPECT_EQ(results.object[0].first, "tables");
  EXPECT_EQ(results.object[1].first, "points");
  EXPECT_EQ(results.object[2].first, "requests");
  EXPECT_EQ(results.object[3].first, "cache_hits");
  EXPECT_EQ(results.object[4].first, "simulations");
}

TEST(BenchJson, RejectsNonFiniteWallTimesAndMetrics) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const SweepPoint point =
      SweepPoint::square("shared-opt", 8, quadcore_q32(), Setting::kIdeal);
  BenchReport report("bad");
  EXPECT_THROW(report.add_point(point, 1, 1, 1, nan), Error);
  EXPECT_THROW(report.add_point(point, 1, 1, 1, -0.5), Error);
  EXPECT_THROW(report.add_point(point, nan, 1, 1, 0), Error);
  EXPECT_THROW(report.add_point(point, 1, inf, 1, 0), Error);
  EXPECT_THROW(report.set_timing(2, nan, 1), Error);
  EXPECT_THROW(report.set_timing(2, 1, -1), Error);
  EXPECT_THROW(report.set_timing(0, 1, 1), Error);
}

TEST(BenchJson, TraceSummaryLandsUnderTimingOnly) {
  BenchReport report = golden_report();
  const std::string results_before = report.results_json();
  report.set_trace_summary(
      R"({"schema":"mcmm-trace-summary-v1","workers":2})");
  // The deterministic subtree is untouched...
  EXPECT_EQ(report.results_json(), results_before);
  // ...and the summary is spliced in as timing.trace, still valid JSON.
  const JsonValue doc = json_parse(report.to_json());
  const JsonValue* trace = doc.find("timing")->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->find("schema")->string, "mcmm-trace-summary-v1");
  EXPECT_EQ(trace->find("workers")->number, 2);
}

TEST(BenchJson, TraceKeyIsAbsentWithoutASummary) {
  const JsonValue doc = json_parse(golden_report().to_json());
  EXPECT_EQ(doc.find("timing")->find("trace"), nullptr);
}

TEST(BenchJson, RejectsMalformedTraceSummaries) {
  BenchReport report = golden_report();
  EXPECT_THROW(report.set_trace_summary("{not json"), Error);
  EXPECT_THROW(report.set_trace_summary("{\"a\":1} trailing"), Error);
  // An empty summary clears the key instead of splicing "".
  report.set_trace_summary("");
  EXPECT_EQ(json_parse(report.to_json()).find("timing")->find("trace"),
            nullptr);
}

TEST(BenchJson, WriteFailsLoudlyOnAnUnwritablePath) {
  EXPECT_THROW(golden_report().write("/nonexistent-dir-mcmm/report.json"),
               Error);
}

TEST(BenchJson, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(json_parse(""), Error);
  EXPECT_THROW(json_parse("{"), Error);
  EXPECT_THROW(json_parse("[1,]"), Error);
  EXPECT_THROW(json_parse("{\"a\":1,}"), Error);
  EXPECT_THROW(json_parse("{'a':1}"), Error);
  EXPECT_THROW(json_parse("1 2"), Error);          // trailing garbage
  EXPECT_THROW(json_parse("\"\\x\""), Error);      // bad escape
  EXPECT_THROW(json_parse("\"\\ud800\""), Error);  // surrogate escape
  EXPECT_THROW(json_parse("nul"), Error);
  EXPECT_THROW(json_parse("01a"), Error);
}

TEST(BenchJson, ParserHandlesScalarsAndEscapes) {
  EXPECT_EQ(json_parse("null").type, JsonValue::Type::kNull);
  EXPECT_TRUE(json_parse("true").boolean);
  EXPECT_DOUBLE_EQ(json_parse("-2.5e2").number, -250.0);
  EXPECT_EQ(json_parse(R"("a\"b\\c\n\u0041")").string, "a\"b\\c\nA");
  const JsonValue arr = json_parse("[1,[2,3],{}]");
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_EQ(arr.array[1].array.size(), 2u);
  EXPECT_EQ(arr.array[2].type, JsonValue::Type::kObject);
}

}  // namespace
}  // namespace mcmm
