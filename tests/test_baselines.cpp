// Behavioural tests for the baselines: Outer Product and the two Equal
// (Toledo-inspired) schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "alg/equal.hpp"
#include "alg/outer_product.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::FmaCoverage;
using mcmm::testing::paper_quadcore;

TEST(OuterProduct, RefusesIdealMachine) {
  Machine machine(paper_quadcore(), Policy::kIdeal);
  EXPECT_THROW(OuterProduct().run(machine, Problem::square(4), paper_quadcore()),
               Error);
}

TEST(OuterProduct, WorksOnAnyCoreCountViaBalancedGrids) {
  // The paper assumes a square torus; the library falls back to the most
  // balanced r x c grid (1 x 3 for three cores) and still covers the
  // iteration space with balanced work.
  MachineConfig cfg = paper_quadcore();
  cfg.p = 3;
  Machine machine(cfg, Policy::kLru);
  mcmm::testing::FmaCoverage coverage(machine);
  const Problem prob{9, 9, 5};
  OuterProduct().run(machine, prob, cfg);
  EXPECT_TRUE(coverage.complete(prob));
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(machine.stats().fmas[c], prob.fmas() / 3);
  }
}

TEST(OuterProduct, TilePartitionBalancesWork) {
  const MachineConfig cfg = paper_quadcore();
  Machine machine(cfg, Policy::kLru);
  const Problem prob{8, 8, 5};
  OuterProduct().run(machine, prob, cfg);
  for (int c = 0; c < cfg.p; ++c) {
    EXPECT_EQ(machine.stats().fmas[c], prob.fmas() / cfg.p);
  }
}

TEST(OuterProduct, StreamsCTileEveryStepWhenCacheTooSmall) {
  // With a C tile far larger than the caches, every k re-faults the tile:
  // distributed misses ~ 3 per FMA (a, b and c all miss every time).
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 16;
  cfg.cd = 4;
  const Problem prob{40, 40, 6};
  Machine machine(cfg, Policy::kLru);
  OuterProduct().run(machine, prob, cfg);
  const double per_core_fmas =
      static_cast<double>(prob.fmas()) / static_cast<double>(cfg.p);
  EXPECT_GT(static_cast<double>(machine.stats().md()), 1.5 * per_core_fmas)
      << "no reuse: C misses every access, plus most of A/B";
}

TEST(SharedEqual, UsesSqrtThirdTiles) {
  // CS = 977 -> s = floor(sqrt(977/3)) = 18 vs SharedOpt's lambda = 30:
  // about sqrt(3) more shared misses for large matrices.  Order 90 divides
  // both tile sides, so neither schedule pays ragged-edge penalties.
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{90, 90, 90};
  Machine equal(cfg, Policy::kIdeal);
  SharedEqual().run(equal, prob, cfg);
  Machine opt(cfg, Policy::kIdeal);
  make_algorithm("shared-opt")->run(opt, prob, cfg);
  EXPECT_GT(equal.stats().ms(), opt.stats().ms());
  const double ratio = static_cast<double>(equal.stats().ms()) /
                       static_cast<double>(opt.stats().ms());
  EXPECT_NEAR(ratio, std::sqrt(3.0), 0.45)
      << "the equal split wastes about sqrt(3) in tile side";
}

TEST(SharedEqual, IdealMsMatchesTiledExpression) {
  // MS = sum over (I,J) tiles of [tile + sum over K of (A tile + B tile)].
  const MachineConfig cfg = paper_quadcore();  // s = 18
  const std::int64_t s = 18;
  const Problem prob{20, 15, 10};
  Machine machine(cfg, Policy::kIdeal);
  SharedEqual().run(machine, prob, cfg);
  std::int64_t expect = 0;
  for (std::int64_t i0 = 0; i0 < prob.m; i0 += s) {
    const std::int64_t ti = std::min(s, prob.m - i0);
    for (std::int64_t j0 = 0; j0 < prob.n; j0 += s) {
      const std::int64_t tj = std::min(s, prob.n - j0);
      expect += ti * tj;
      for (std::int64_t k0 = 0; k0 < prob.z; k0 += s) {
        const std::int64_t tk = std::min(s, prob.z - k0);
        expect += ti * tk + tk * tj;
      }
    }
  }
  EXPECT_EQ(machine.stats().ms(), expect);
}

TEST(DistributedEqual, WorseThanDistributedOptByAboutSqrtThree) {
  // CD = 21: s = floor(sqrt(7)) = 2 vs mu = 4.
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{32, 32, 32};
  Machine equal(cfg, Policy::kIdeal);
  DistributedEqual().run(equal, prob, cfg);
  Machine opt(cfg, Policy::kIdeal);
  make_algorithm("distributed-opt")->run(opt, prob, cfg);
  EXPECT_GT(equal.stats().md(), opt.stats().md());
  const double ratio = static_cast<double>(equal.stats().md()) /
                       static_cast<double>(opt.stats().md());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.0);
}

TEST(DistributedEqual, IdealMdFollowsEqualSplitFormula) {
  // With s | m,n,z and p tiles per group: MD = mn/p + 2mnz/(p s).
  const MachineConfig cfg = paper_quadcore();  // CD=21 -> s=2
  const std::int64_t s = 2;
  const Problem prob{16, 16, 16};
  Machine machine(cfg, Policy::kIdeal);
  DistributedEqual().run(machine, prob, cfg);
  const std::int64_t mn = prob.m * prob.n;
  const std::int64_t mnz = prob.fmas();
  EXPECT_EQ(machine.stats().md(), mn / cfg.p + 2 * mnz / (cfg.p * s));
}

TEST(EqualSchedules, BalanceAcrossCores) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob{16, 16, 8};
  for (const char* name : {"shared-equal", "distributed-equal"}) {
    Machine machine(cfg, Policy::kLru);
    make_algorithm(name)->run(machine, prob, cfg);
    const std::int64_t total = machine.stats().total_fmas();
    EXPECT_EQ(total, prob.fmas());
    for (int c = 0; c < cfg.p; ++c) {
      EXPECT_NEAR(static_cast<double>(machine.stats().fmas[c]),
                  static_cast<double>(total) / cfg.p,
                  static_cast<double>(total) / cfg.p * 0.5)
          << name << " core " << c;
    }
  }
}

}  // namespace
}  // namespace mcmm
