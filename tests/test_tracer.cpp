#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/parallel_gemm.hpp"
#include "gemm/thread_pool.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace mcmm {
namespace {

TEST(ExecutionTracer, RecordsSpansPerWorker) {
  ExecutionTracer tracer(2, 16);
  EXPECT_EQ(tracer.workers(), 2);
  EXPECT_EQ(tracer.capacity(), 16u);
  tracer.record(0, TracePhase::kPackA, 10, 20);
  tracer.record(1, TracePhase::kMicroKernel, 5, 50);
  ASSERT_EQ(tracer.span_count(0), 1u);
  ASSERT_EQ(tracer.span_count(1), 1u);
  const TraceSpan& s = tracer.span(0, 0);
  EXPECT_EQ(s.begin_ns, 10);
  EXPECT_EQ(s.end_ns, 20);
  EXPECT_EQ(s.phase, TracePhase::kPackA);
  EXPECT_EQ(s.region, -1);  // outside any region
  EXPECT_EQ(tracer.total_dropped(), 0);
}

TEST(ExecutionTracer, RejectsBadConstruction) {
  EXPECT_THROW(ExecutionTracer(0), Error);
  EXPECT_THROW(ExecutionTracer(1, 0), Error);
}

TEST(ExecutionTracer, FullRingCountsDropsInsteadOfGrowing) {
  ExecutionTracer tracer(1, 2);
  tracer.record(0, TracePhase::kTask, 0, 1);
  tracer.record(0, TracePhase::kTask, 1, 2);
  tracer.record(0, TracePhase::kTask, 2, 3);  // ring is full
  EXPECT_EQ(tracer.span_count(0), 2u);
  EXPECT_EQ(tracer.dropped(0), 1);
  EXPECT_EQ(tracer.total_dropped(), 1);
}

TEST(ExecutionTracer, OutOfRangeWorkerIsIgnored) {
  ExecutionTracer tracer(1, 4);
  tracer.record(-1, TracePhase::kTask, 0, 1);
  tracer.record(7, TracePhase::kTask, 0, 1);
  EXPECT_EQ(tracer.span_count(0), 0u);
  EXPECT_EQ(tracer.total_dropped(), 0);
}

TEST(ExecutionTracer, RegionEmitsBarrierOnlyForParticipants) {
  ExecutionTracer tracer(2, 16);
  tracer.begin_region("r0");
  tracer.record(0, TracePhase::kWork, 0, 1);  // worker 1 records nothing
  tracer.end_region();
  EXPECT_EQ(tracer.num_regions(), 1u);
  EXPECT_EQ(tracer.region_label(0), "r0");
  EXPECT_GE(tracer.region_end_ns(0), tracer.region_begin_ns(0));
  // Worker 0: the work span plus the synthesised barrier tail.
  ASSERT_EQ(tracer.span_count(0), 2u);
  const TraceSpan& barrier = tracer.span(0, 1);
  EXPECT_EQ(barrier.phase, TracePhase::kBarrier);
  EXPECT_EQ(barrier.begin_ns, 1);
  EXPECT_EQ(barrier.end_ns, tracer.region_end_ns(0));
  EXPECT_EQ(barrier.region, 0);
  // Worker 1 never participated: no phantom all-idle barrier.
  EXPECT_EQ(tracer.span_count(1), 0u);
}

TEST(ExecutionTracer, RegionsMustNotNest) {
  ExecutionTracer tracer(1);
  tracer.begin_region("a");
  EXPECT_THROW(tracer.begin_region("b"), Error);
  tracer.end_region();
  EXPECT_THROW(tracer.end_region(), Error);
}

TEST(PhaseTotals, AttributionMath) {
  PhaseTotals t;
  t.add(TraceSpan{0, 4'000'000, -1, TracePhase::kWork});
  t.add(TraceSpan{0, 1'000'000, -1, TracePhase::kPackA});
  t.add(TraceSpan{1'000'000, 3'000'000, -1, TracePhase::kMicroKernel});
  t.add(TraceSpan{4'000'000, 5'000'000, -1, TracePhase::kBarrier});
  EXPECT_DOUBLE_EQ(t.ms(TracePhase::kWork), 4.0);
  EXPECT_DOUBLE_EQ(t.ms(TracePhase::kPackA), 1.0);
  EXPECT_DOUBLE_EQ(t.ms(TracePhase::kMicroKernel), 2.0);
  // other = work - (packA + packB + micro) = 4 - 3 = 1.
  EXPECT_DOUBLE_EQ(t.other_ms(), 1.0);
  // idle = barrier / (work + barrier) = 1 / 5.
  EXPECT_DOUBLE_EQ(t.idle_fraction(), 0.2);
  EXPECT_EQ(t.spans[static_cast<int>(TracePhase::kWork)], 1);
  // A negative-length span must clamp to zero, not subtract.
  PhaseTotals clamped;
  clamped.add(TraceSpan{10, 5, -1, TracePhase::kTask});
  EXPECT_EQ(clamped.ns[static_cast<int>(TracePhase::kTask)], 0);
  EXPECT_EQ(clamped.spans[static_cast<int>(TracePhase::kTask)], 1);
}

TEST(TraceSummary, AggregatesTotalsAndRegions) {
  ExecutionTracer tracer(2, 8);
  tracer.record(0, TracePhase::kTask, 0, 1'000'000);  // outside any region
  tracer.begin_region("sched");
  tracer.record(0, TracePhase::kWork, 0, 2'000'000);
  tracer.record(1, TracePhase::kWork, 0, 1'000'000);
  tracer.end_region();
  const TraceSummary summary = summarize_trace(tracer);
  EXPECT_EQ(summary.workers, 2);
  EXPECT_EQ(summary.dropped_total, 0);
  ASSERT_EQ(summary.regions.size(), 1u);
  EXPECT_EQ(summary.regions[0].label, "sched");
  ASSERT_EQ(summary.regions[0].workers.size(), 2u);
  // The out-of-region task span counts toward totals but not the region.
  EXPECT_DOUBLE_EQ(summary.totals[0].ms(TracePhase::kTask), 1.0);
  EXPECT_DOUBLE_EQ(summary.regions[0].workers[0].ms(TracePhase::kTask), 0.0);
  EXPECT_DOUBLE_EQ(summary.regions[0].workers[0].ms(TracePhase::kWork), 2.0);
  EXPECT_DOUBLE_EQ(summary.regions[0].workers[1].ms(TracePhase::kWork), 1.0);
  EXPECT_GE(summary.regions[0].wall_ms(), 0.0);
}

TEST(TraceSummary, OpenRegionIsSkipped) {
  ExecutionTracer tracer(1, 8);
  tracer.begin_region("open");
  tracer.record(0, TracePhase::kWork, 0, 10);
  const TraceSummary summary = summarize_trace(tracer);
  EXPECT_TRUE(summary.regions.empty());
  // The span still lands in the per-worker totals.
  EXPECT_EQ(summary.totals[0].spans[static_cast<int>(TracePhase::kWork)], 1);
  tracer.end_region();
}

TEST(TraceSummaryJson, ParsesWithStableSchema) {
  ExecutionTracer tracer(2, 8);
  tracer.begin_region("sched");
  tracer.record(0, TracePhase::kWork, 0, 100);
  tracer.end_region();
  const std::string doc = trace_summary_json(summarize_trace(tracer));
  const JsonValue v = json_parse(doc);
  ASSERT_NE(v.find("schema"), nullptr);
  EXPECT_EQ(v.find("schema")->string, "mcmm-trace-summary-v1");
  ASSERT_NE(v.find("per_worker"), nullptr);
  EXPECT_EQ(v.find("per_worker")->array.size(), 2u);
  const JsonValue& worker0 = v.find("per_worker")->array[0];
  ASSERT_NE(worker0.find("ms"), nullptr);
  ASSERT_NE(worker0.find("ms")->find("micro-kernel"), nullptr);
  ASSERT_NE(v.find("regions"), nullptr);
  ASSERT_EQ(v.find("regions")->array.size(), 1u);
  EXPECT_EQ(v.find("regions")->array[0].find("label")->string, "sched");
}

TEST(ChromeTrace, EmitsMetadataAndCompleteEvents) {
  ExecutionTracer tracer(3, 8);
  tracer.begin_region("sched");
  // Tiny timestamps so the region end (real clock) is guaranteed to land
  // after the span and synthesise the barrier tail.
  tracer.record(0, TracePhase::kMicroKernel, 0, 1);
  tracer.end_region();
  const JsonValue v = json_parse(chrome_trace_json(tracer));
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  int thread_names = 0;
  int complete = 0;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.find("ph")->string;
    if (ph == "M" && e.find("name")->string == "thread_name") ++thread_names;
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.find("dur")->number, 0.0);
      EXPECT_GE(e.find("ts")->number, 0.0);
    }
  }
  EXPECT_EQ(thread_names, 3);  // one per worker
  EXPECT_GE(complete, 2);      // micro span + barrier tail
  ASSERT_NE(v.find("displayTimeUnit"), nullptr);
}

TEST(TracerIntegration, ThreadPoolRegionsCarryScheduleLabels) {
  ExecutionTracer tracer(2);
  ThreadPool pool(2);
  pool.set_tracer(&tracer);
  const std::int64_t q = 8;
  const std::int64_t n = 4 * q;
  Matrix a(n, n), b(n, n), c(n, n), ref(n, n);
  a.fill_random(1);
  b.fill_random(2);
  KernelContext ctx(pool.workers(), KernelPath::kScalar);
  ctx.set_tracer(&tracer);
  const Tiling t = tiling_for_host(2, 8 << 20, 256 << 10, q);
  parallel_gemm_shared_opt(c, a, b, t, pool, ctx);
  gemm_reference(ref, a, b);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-9);
    }
  }
  ASSERT_EQ(tracer.num_regions(), 1u);
  EXPECT_EQ(tracer.region_label(0), "shared-opt");
  const TraceSummary summary = summarize_trace(tracer);
  for (int w = 0; w < 2; ++w) {
    // Every worker ran the region job and the micro-kernel inside it.
    EXPECT_EQ(summary.regions[0].workers[w].spans[static_cast<int>(
                  TracePhase::kWork)],
              1);
    EXPECT_GT(summary.regions[0].workers[w].spans[static_cast<int>(
                  TracePhase::kMicroKernel)],
              0);
    EXPECT_GE(summary.totals[w].idle_fraction(), 0.0);
    EXPECT_LE(summary.totals[w].idle_fraction(), 1.0);
  }
}

TEST(TracerIntegration, RunBatchRecordsOneSpanPerTask) {
  ExecutionTracer tracer(2);
  ThreadPool pool(2);
  pool.set_tracer(&tracer);
  std::vector<std::function<void()>> tasks(10, [] {});
  pool.run_batch(tasks);
  const TraceSummary summary = summarize_trace(tracer);
  std::int64_t task_spans = 0;
  for (const PhaseTotals& t : summary.totals) {
    task_spans += t.spans[static_cast<int>(TracePhase::kTask)];
  }
  EXPECT_EQ(task_spans, 10);
  ASSERT_EQ(summary.regions.size(), 1u);
  EXPECT_EQ(summary.regions[0].label, "parallel");
}

TEST(TracerIntegration, DetachedTracerRecordsNothing) {
  ExecutionTracer tracer(2);
  ThreadPool pool(2);
  pool.set_tracer(&tracer);
  pool.set_tracer(nullptr);  // detach again
  pool.run_on_all([](int) {});
  EXPECT_EQ(tracer.num_regions(), 0u);
  EXPECT_EQ(tracer.span_count(0), 0u);
  EXPECT_EQ(tracer.span_count(1), 0u);
}

TEST(TracerIntegration, RegionClosesWhenTheJobThrows) {
  ExecutionTracer tracer(2);
  ThreadPool pool(2);
  pool.set_tracer(&tracer);
  EXPECT_THROW(
      pool.run_on_all([](int core) {
        if (core == 0) throw Error("boom");
      }),
      Error);
  ASSERT_EQ(tracer.num_regions(), 1u);
  EXPECT_GE(tracer.region_end_ns(0), 0);  // closed, not left open
  // Both workers still recorded their work span.
  EXPECT_GE(tracer.span_count(0), 1u);
  EXPECT_GE(tracer.span_count(1), 1u);
}

}  // namespace
}  // namespace mcmm
