#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(SeriesTable, CellsRoundTrip) {
  SeriesTable t("order");
  const std::size_t a = t.add_series("MS");
  const std::size_t b = t.add_series("bound");
  t.set(a, 100, 12345);
  t.set(b, 100, 12000);
  t.set(a, 200, 45678);
  EXPECT_EQ(t.num_series(), 2u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(*t.cell(a, 100), 12345);
  EXPECT_DOUBLE_EQ(*t.cell(b, 100), 12000);
  EXPECT_DOUBLE_EQ(*t.cell(a, 200), 45678);
  EXPECT_FALSE(t.cell(b, 200).has_value()) << "missing cell";
  EXPECT_FALSE(t.cell(a, 999).has_value()) << "missing row";
}

TEST(SeriesTable, SeriesAddedAfterRows) {
  SeriesTable t("x");
  const std::size_t a = t.add_series("first");
  t.set(a, 1, 10);
  const std::size_t b = t.add_series("second");
  t.set(b, 1, 20);
  EXPECT_DOUBLE_EQ(*t.cell(a, 1), 10);
  EXPECT_DOUBLE_EQ(*t.cell(b, 1), 20);
}

TEST(SeriesTable, OverwriteCell) {
  SeriesTable t("x");
  const std::size_t a = t.add_series("s");
  t.set(a, 1, 10);
  t.set(a, 1, 99);
  EXPECT_DOUBLE_EQ(*t.cell(a, 1), 99);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(SeriesTable, BadSeriesIndexThrows) {
  SeriesTable t("x");
  EXPECT_THROW(t.set(0, 1, 1), Error);
  EXPECT_THROW(t.cell(3, 1), Error);
}

TEST(FormatValue, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(format_value(0), "0");
  EXPECT_EQ(format_value(123456789), "123456789");
  EXPECT_EQ(format_value(-42), "-42");
}

TEST(FormatValue, FractionsKeepPrecision) {
  EXPECT_EQ(format_value(1.5), "1.5");
  EXPECT_EQ(format_value(0.123456789), "0.123457");
}

}  // namespace
}  // namespace mcmm
