// Multi-tenant cache partitioning: re-derived tilings stay feasible under
// the inclusive-hierarchy clamp, and the predictions driving schedule
// choice respond monotonically to the cache share (property-style sweeps
// in the test_properties.cpp idiom).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "serve/partition.hpp"
#include "util/error.hpp"
#include "util/warnings.hpp"

namespace mcmm::serve {
namespace {

ServeModel desktop_model() {
  ServeModel base;
  base.p = 4;
  base.q = 32;
  base.shared_cache_bytes = 8ll << 20;
  base.private_cache_bytes = 256ll << 10;
  return base;
}

TEST(Partition, SoloTenantMatchesHostTiling) {
  const ServeModel base = desktop_model();
  const TenantModel solo = partition_for_tenants(base, 1);
  const Tiling host = tiling_for_host(base.p, base.shared_cache_bytes,
                                      base.private_cache_bytes, base.q);
  EXPECT_EQ(solo.tenants, 1);
  EXPECT_EQ(solo.cs_share_bytes, base.shared_cache_bytes);
  EXPECT_EQ(solo.tiling.lambda, host.lambda);
  EXPECT_EQ(solo.tiling.mu, host.mu);
  EXPECT_EQ(solo.tiling.alpha, host.alpha);
  EXPECT_EQ(solo.tiling.beta, host.beta);
  EXPECT_FALSE(solo.clamped);
}

TEST(Partition, RejectsBadInputs) {
  EXPECT_THROW(partition_for_tenants(desktop_model(), 0), Error);
  EXPECT_THROW(partition_for_tenants(desktop_model(), -2), Error);
  ServeModel bad = desktop_model();
  bad.shared_cache_bytes = 0;
  EXPECT_THROW(partition_for_tenants(bad, 1), Error);
  bad = desktop_model();
  bad.sigma_d = 0;
  EXPECT_THROW(partition_for_tenants(bad, 1), Error);
}

TEST(Partition, ShareIsEvenSplit) {
  const ServeModel base = desktop_model();
  for (int k = 1; k <= 6; ++k) {
    const TenantModel model = partition_for_tenants(base, k);
    EXPECT_EQ(model.tenants, k);
    EXPECT_EQ(model.cs_share_bytes, base.shared_cache_bytes / k);
  }
}

// Geometry sweep in the test_properties.cpp style: every partitioned
// machine must still satisfy the model's structural invariants.
struct PartitionGeometry {
  const char* name;
  int p;
  std::int64_t q;
  std::int64_t shared_kib;
  std::int64_t private_kib;
};

std::vector<PartitionGeometry> partition_geometries() {
  return {
      {"desktop_quad", 4, 32, 8192, 256},
      {"big_llc", 8, 64, 32768, 1024},
      {"small_share", 2, 64, 1024, 512},
      {"tiny_l3", 4, 32, 512, 128},
      {"one_core", 1, 16, 2048, 64},
  };
}

class PartitionProperty : public ::testing::TestWithParam<PartitionGeometry> {
 protected:
  ServeModel base() const {
    const PartitionGeometry& g = GetParam();
    ServeModel m;
    m.p = g.p;
    m.q = g.q;
    m.shared_cache_bytes = g.shared_kib << 10;
    m.private_cache_bytes = g.private_kib << 10;
    return m;
  }
};

TEST_P(PartitionProperty, InclusiveHierarchyClampHolds) {
  // The clamp warning is expected for infeasible shares; keep it off the
  // test log and assert through the returned model instead.
  ScopedWarningCapture captured;
  for (int k = 1; k <= 8; ++k) {
    const TenantModel model = partition_for_tenants(base(), k);
    // validate() would throw if cs < p*cd; spell the invariant out anyway.
    EXPECT_GE(model.config.cs,
              static_cast<std::int64_t>(model.config.p) * model.config.cd)
        << GetParam().name << " k=" << k;
    EXPECT_NO_THROW(model.config.validate());
    EXPECT_GE(model.tiling.lambda, 1) << GetParam().name << " k=" << k;
    EXPECT_GE(model.tiling.mu, 1);
    EXPECT_GE(model.tiling.alpha, 1);
    EXPECT_GE(model.tiling.beta, 1);
  }
}

TEST_P(PartitionProperty, LambdaMonotoneInShare) {
  ScopedWarningCapture captured;
  std::int64_t prev_lambda = 0;
  std::int64_t prev_cs = 0;
  for (int k = 8; k >= 1; --k) {  // share grows as k shrinks
    const TenantModel model = partition_for_tenants(base(), k);
    if (k < 8) {
      EXPECT_GE(model.tiling.lambda, prev_lambda)
          << GetParam().name << ": lambda shrank as the share grew (k=" << k
          << ")";
      EXPECT_GE(model.config.cs, prev_cs);
    }
    prev_lambda = model.tiling.lambda;
    prev_cs = model.config.cs;
  }
}

TEST_P(PartitionProperty, PredictionsMonotoneInShare) {
  ScopedWarningCapture captured;
  const Problem prob{64, 64, 64};
  const double sigma_s = 1.0;
  const double sigma_d = 1.0;
  constexpr ScheduleKind kKinds[] = {ScheduleKind::kSharedOpt,
                                     ScheduleKind::kDistributedOpt,
                                     ScheduleKind::kTradeoff};
  for (ScheduleKind kind : kKinds) {
    double prev_ms = 0;
    double prev_tdata = 0;
    bool first = true;
    for (int k = 1; k <= 8; ++k) {  // share shrinks as k grows
      const TenantModel model = partition_for_tenants(base(), k);
      const MissPrediction pred = predict_for(model, prob, kind);
      EXPECT_GT(pred.ms, 0);
      EXPECT_GT(pred.md, 0);
      if (!first) {
        // A smaller share can never predict fewer shared misses: lambda
        // and alpha are non-increasing in CS, and DistributedOpt's MS
        // ignores CS entirely (equality allowed).
        EXPECT_GE(pred.ms, prev_ms)
            << GetParam().name << " " << to_string(kind) << " k=" << k;
        // Tdata is monotone too for SharedOpt/DistributedOpt; Tradeoff is
        // excluded — a grain-step drop in alpha can raise beta and trade
        // MS against MD either way.
        if (kind != ScheduleKind::kTradeoff) {
          EXPECT_GE(pred.tdata(sigma_s, sigma_d) + 1e-9, prev_tdata)
              << GetParam().name << " " << to_string(kind) << " k=" << k;
        }
      }
      first = false;
      prev_ms = pred.ms;
      prev_tdata = pred.tdata(sigma_s, sigma_d);
    }
  }
}

TEST_P(PartitionProperty, ChosenScheduleMinimisesPredictedTdata) {
  ScopedWarningCapture captured;
  const Problem prob{48, 48, 48};
  for (int k = 1; k <= 4; ++k) {
    const TenantModel model = partition_for_tenants(base(), k);
    const ScheduleKind chosen = choose_schedule(model, prob);
    const double chosen_tdata =
        predict_for(model, prob, chosen)
            .tdata(model.config.sigma_s, model.config.sigma_d);
    for (ScheduleKind other : {ScheduleKind::kSharedOpt,
                               ScheduleKind::kDistributedOpt,
                               ScheduleKind::kTradeoff}) {
      EXPECT_LE(chosen_tdata,
                predict_for(model, prob, other)
                        .tdata(model.config.sigma_s, model.config.sigma_d) +
                    1e-9)
          << GetParam().name << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PartitionProperty, ::testing::ValuesIn(partition_geometries()),
    [](const ::testing::TestParamInfo<PartitionGeometry>& p_info) {
      return p_info.param.name;
    });

TEST(Partition, ClampedFlagTracksInfeasibleShares) {
  ScopedWarningCapture captured;
  ServeModel base;
  base.p = 4;
  base.q = 64;
  base.shared_cache_bytes = 4ll << 20;   // 4 MiB L3
  base.private_cache_bytes = 1ll << 20;  // 1 MiB per-core: CS == p*CD exactly
  EXPECT_FALSE(partition_for_tenants(base, 1).clamped);
  // Any split leaves less than p*CD; the model must clamp and say so.
  const TenantModel two = partition_for_tenants(base, 2);
  EXPECT_TRUE(two.clamped);
  EXPECT_EQ(two.config.cs,
            static_cast<std::int64_t>(two.config.p) * two.config.cd);
}

TEST(ScheduleKind, NamesRoundTrip) {
  for (ScheduleKind kind : {ScheduleKind::kAuto, ScheduleKind::kSharedOpt,
                            ScheduleKind::kDistributedOpt,
                            ScheduleKind::kTradeoff}) {
    EXPECT_EQ(parse_schedule_kind(to_string(kind)), kind);
  }
  EXPECT_THROW(parse_schedule_kind("fastest"), Error);
  EXPECT_THROW(parse_schedule_kind(""), Error);
}

TEST(ScheduleKind, PredictForRejectsAuto) {
  const TenantModel model = partition_for_tenants(desktop_model(), 1);
  EXPECT_THROW(predict_for(model, Problem{8, 8, 8}, ScheduleKind::kAuto),
               Error);
}

}  // namespace
}  // namespace mcmm::serve
