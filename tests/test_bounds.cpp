#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(LoomisWhitney, OptimumValue) {
  EXPECT_NEAR(loomis_whitney_k(), std::sqrt(8.0 / 27.0), 1e-15);
}

// Verify by grid search that eta = nu = xi = 2/3 maximises
// sqrt(eta nu xi) subject to eta + nu + xi <= 2 (Section 2.3.1).
TEST(LoomisWhitney, GridSearchConfirmsOptimum) {
  const double kstar = loomis_whitney_k();
  double best = 0;
  const int kSteps = 80;
  for (int a = 0; a <= kSteps; ++a) {
    for (int b = 0; b <= kSteps - a; ++b) {
      const double eta = 2.0 * a / kSteps;
      const double nu = 2.0 * b / kSteps;
      const double xi = 2.0 - eta - nu;
      best = std::max(best, loomis_whitney_objective(eta, nu, xi));
    }
  }
  EXPECT_LE(best, kstar + 1e-12) << "no grid point beats the optimum";
  EXPECT_NEAR(loomis_whitney_objective(2.0 / 3, 2.0 / 3, 2.0 / 3), kstar,
              1e-15);
}

TEST(LoomisWhitney, ObjectiveZeroOutsideFeasibleRegion) {
  EXPECT_EQ(loomis_whitney_objective(1.0, 1.0, 0.5), 0.0);
  EXPECT_EQ(loomis_whitney_objective(-0.1, 0.5, 0.5), 0.0);
}

TEST(CcrBound, Formula) {
  EXPECT_NEAR(ccr_lower_bound(8), std::sqrt(27.0 / 64.0), 1e-15);
  EXPECT_NEAR(ccr_lower_bound(977), std::sqrt(27.0 / (8.0 * 977)), 1e-15);
  EXPECT_THROW(ccr_lower_bound(0), Error);
}

TEST(CcrBound, DecreasesWithCapacity) {
  double prev = ccr_lower_bound(1);
  for (std::int64_t z = 2; z < 2000; z *= 2) {
    const double cur = ccr_lower_bound(z);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(MissBounds, MatchPaperExpressions) {
  const Problem prob{100, 200, 50};
  const double mnz = 100.0 * 200.0 * 50.0;
  EXPECT_NEAR(ms_lower_bound(prob, 977), mnz * std::sqrt(27.0 / (8 * 977.0)),
              1e-6);
  EXPECT_NEAR(md_lower_bound(prob, 4, 21),
              mnz / 4.0 * std::sqrt(27.0 / (8 * 21.0)), 1e-6);
}

TEST(MissBounds, TdataCombinesBothLevels) {
  const Problem prob{64, 64, 64};
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  cfg.sigma_s = 2.0;
  cfg.sigma_d = 0.5;
  const double expect = ms_lower_bound(prob, cfg.cs) / cfg.sigma_s +
                        md_lower_bound(prob, cfg.p, cfg.cd) / cfg.sigma_d;
  EXPECT_NEAR(tdata_lower_bound(prob, cfg), expect, 1e-9);
}

TEST(MissBounds, ScaleLinearlyWithWork) {
  const Problem small{10, 10, 10};
  const Problem big{20, 20, 20};
  EXPECT_NEAR(ms_lower_bound(big, 245), 8.0 * ms_lower_bound(small, 245),
              1e-9);
  EXPECT_NEAR(md_lower_bound(big, 4, 6), 8.0 * md_lower_bound(small, 4, 6),
              1e-9);
}

}  // namespace
}  // namespace mcmm
