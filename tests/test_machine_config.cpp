#include "sim/machine_config.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(MachineConfig, DefaultIsValid) {
  MachineConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MachineConfig, RejectsInclusivityViolation) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cd = 100;
  cfg.cs = 399;  // < p * cd
  EXPECT_THROW(cfg.validate(), Error);
  cfg.cs = 400;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MachineConfig, RejectsBadValues) {
  MachineConfig cfg;
  cfg.p = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = MachineConfig{};
  cfg.sigma_s = 0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg = MachineConfig{};
  cfg.cd = 0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(MachineConfig, ScaledCaches) {
  MachineConfig cfg;
  cfg.cs = 977;
  cfg.cd = 21;
  const MachineConfig doubled = cfg.with_caches_scaled(2, 1);
  EXPECT_EQ(doubled.cs, 1954);
  EXPECT_EQ(doubled.cd, 42);
  const MachineConfig halved = cfg.with_caches_scaled(1, 2);
  EXPECT_EQ(halved.cs, 488);
  EXPECT_EQ(halved.cd, 10);
  EXPECT_EQ(halved.p, cfg.p) << "p and bandwidths untouched";
}

// Section 4.1 of the paper: 8MB shared / 256KB distributed, 8-byte
// coefficients, capacities in q x q blocks.
TEST(MachineConfig, PaperQuadcoreCapacities) {
  const MachineConfig q32_twothirds = MachineConfig::realistic_quadcore(32, 2.0 / 3.0);
  EXPECT_EQ(q32_twothirds.p, 4);
  EXPECT_EQ(q32_twothirds.cs, 977);
  EXPECT_EQ(q32_twothirds.cd, 21);

  const MachineConfig q32_half = MachineConfig::realistic_quadcore(32, 0.5);
  EXPECT_EQ(q32_half.cs, 977);
  EXPECT_EQ(q32_half.cd, 16);

  const MachineConfig q64_twothirds = MachineConfig::realistic_quadcore(64, 2.0 / 3.0);
  EXPECT_EQ(q64_twothirds.cs, 245);
  EXPECT_EQ(q64_twothirds.cd, 6);

  const MachineConfig q64_half = MachineConfig::realistic_quadcore(64, 0.5);
  EXPECT_EQ(q64_half.cd, 4);

  const MachineConfig q80_twothirds = MachineConfig::realistic_quadcore(80, 2.0 / 3.0);
  EXPECT_EQ(q80_twothirds.cs, 157);
  EXPECT_EQ(q80_twothirds.cd, 4);

  const MachineConfig q80_half = MachineConfig::realistic_quadcore(80, 0.5);
  EXPECT_EQ(q80_half.cd, 3);
}

TEST(MachineConfig, BandwidthRatio) {
  MachineConfig cfg;
  const MachineConfig mid = cfg.with_bandwidth_ratio(0.5);
  EXPECT_DOUBLE_EQ(mid.sigma_s, 1.0);
  EXPECT_DOUBLE_EQ(mid.sigma_d, 1.0);
  const MachineConfig fast_shared = cfg.with_bandwidth_ratio(0.75);
  EXPECT_DOUBLE_EQ(fast_shared.sigma_s, 1.5);
  EXPECT_DOUBLE_EQ(fast_shared.sigma_d, 0.5);
  // r = sigma_S / (sigma_S + sigma_D) must be recovered.
  EXPECT_NEAR(fast_shared.sigma_s / (fast_shared.sigma_s + fast_shared.sigma_d),
              0.75, 1e-12);
}

TEST(MachineConfig, BandwidthRatioEndpointsStayFinite) {
  MachineConfig cfg;
  const MachineConfig r0 = cfg.with_bandwidth_ratio(0.0);
  EXPECT_GT(r0.sigma_s, 0.0);
  EXPECT_NO_THROW(r0.validate());
  const MachineConfig r1 = cfg.with_bandwidth_ratio(1.0);
  EXPECT_GT(r1.sigma_d, 0.0);
  EXPECT_NO_THROW(r1.validate());
  EXPECT_THROW(cfg.with_bandwidth_ratio(-0.1), Error);
  EXPECT_THROW(cfg.with_bandwidth_ratio(1.1), Error);
}

}  // namespace
}  // namespace mcmm
