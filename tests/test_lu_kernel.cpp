#include "lu/lu_kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(LuUnblocked, TinyHandComputedCase) {
  // A = [4 3; 6 3] = L U with L = [1 0; 1.5 1], U = [4 3; 0 -1.5].
  Matrix a(2, 2);
  a.at(0, 0) = 4; a.at(0, 1) = 3; a.at(1, 0) = 6; a.at(1, 1) = 3;
  lu_factor_unblocked(a);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.5);
}

TEST(LuUnblocked, ReconstructionResidualTiny) {
  for (const std::int64_t n : {1, 2, 5, 16, 33, 64}) {
    const Matrix original = diagonally_dominant_matrix(n, 42);
    Matrix lu = original;
    lu_factor_unblocked(lu);
    EXPECT_LT(lu_residual(original, lu), 1e-12) << "n=" << n;
  }
}

TEST(LuUnblocked, RejectsBadInput) {
  Matrix rect(3, 4);
  EXPECT_THROW(lu_factor_unblocked(rect), Error);
  Matrix singular(2, 2, 0.0);
  EXPECT_THROW(lu_factor_unblocked(singular), Error);
}

class LuBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuBlockedSizes, MatchesUnblockedFactors) {
  const auto [n, q] = GetParam();
  const Matrix original = diagonally_dominant_matrix(n, 7);
  Matrix expect = original;
  lu_factor_unblocked(expect);
  Matrix got = original;
  lu_factor_blocked(got, q);
  // Same factors up to rounding accumulated differently.
  EXPECT_LT(Matrix::max_abs_diff(got, expect), 1e-9 * n);
  EXPECT_LT(lu_residual(original, got), 1e-12);
}

std::string lu_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string name = "n";
  name += std::to_string(std::get<0>(info.param));
  name += "q";
  name += std::to_string(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(8, 4),
                      std::make_tuple(16, 16), std::make_tuple(17, 4),
                      std::make_tuple(32, 8), std::make_tuple(45, 7),
                      std::make_tuple(64, 128)),
    lu_case_name);

TEST(Trsm, LowerLeftUnitSolvesAgainstReference) {
  // Build L (unit lower) explicitly, pick X, compute B = L X, solve back.
  const std::int64_t k = 5, nb = 3;
  Matrix lu(k, k);
  lu.fill_random(3);
  Matrix x(k, nb);
  x.fill_random(4);
  Matrix b(k, nb, 0.0);
  for (std::int64_t i = 0; i < k; ++i) {
    for (std::int64_t j = 0; j < nb; ++j) {
      double sum = x.at(i, j);  // unit diagonal
      for (std::int64_t r = 0; r < i; ++r) sum += lu.at(i, r) * x.at(r, j);
      b.at(i, j) = sum;
    }
  }
  // Embed b into a scratch matrix at offset (0, 0) and solve in place.
  trsm_lower_left_unit(lu, b, 0, k, 0, nb);
  EXPECT_LT(Matrix::max_abs_diff(b, x), 1e-12);
}

TEST(Trsm, UpperRightSolvesAgainstReference) {
  const std::int64_t k = 5, mb = 4;
  Matrix lu = diagonally_dominant_matrix(k, 9);  // safe diagonal for U
  Matrix x(mb, k);
  x.fill_random(5);
  Matrix b(mb, k, 0.0);
  for (std::int64_t i = 0; i < mb; ++i) {
    for (std::int64_t c = 0; c < k; ++c) {
      double sum = 0;
      for (std::int64_t r = 0; r <= c; ++r) sum += x.at(i, r) * lu.at(r, c);
      b.at(i, c) = sum;
    }
  }
  trsm_upper_right(lu, b, 0, k, 0, mb);
  EXPECT_LT(Matrix::max_abs_diff(b, x), 1e-10);
}

TEST(LuSolve, SolvesLinearSystem) {
  const std::int64_t n = 24;
  const Matrix a = diagonally_dominant_matrix(n, 11);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i)] +=
          a.at(i, j) * x_true[static_cast<std::size_t>(j)];
    }
  }
  Matrix lu = a;
  lu_factor_blocked(lu, 8);
  const std::vector<double> x = lu_solve(lu, b);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-10);
  }
}

TEST(LuSolve, RejectsWrongRhsLength) {
  Matrix lu = diagonally_dominant_matrix(4, 1);
  lu_factor_unblocked(lu);
  EXPECT_THROW(lu_solve(lu, std::vector<double>(3)), Error);
}

TEST(DiagonallyDominant, IsActuallyDominant) {
  const Matrix a = diagonally_dominant_matrix(20, 5);
  for (std::int64_t i = 0; i < 20; ++i) {
    double off = 0;
    for (std::int64_t j = 0; j < 20; ++j) {
      if (j != i) off += std::fabs(a.at(i, j));
    }
    EXPECT_GT(a.at(i, i), off) << "row " << i;
  }
}

}  // namespace
}  // namespace mcmm
