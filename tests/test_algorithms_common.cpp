// Invariants every schedule must satisfy, under both cache policies:
//  * every block FMA (i,j,k) executed exactly once;
//  * computation spread across all cores;
//  * under IDEAL: caches left empty (every load paired with an evict);
//  * miss counts never beat the Loomis-Whitney lower bounds.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::FmaCoverage;
using mcmm::testing::small_quadcore;

struct Case {
  std::string algorithm;
  Problem prob;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  std::string name = c.algorithm + "_" + std::to_string(c.prob.m) + "x" +
                     std::to_string(c.prob.n) + "x" + std::to_string(c.prob.z);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const std::vector<Problem> probs = {
      {8, 8, 8},     // divisible by most tile sizes
      {13, 7, 5},    // ragged everything
      {1, 1, 1},     // minimal
      {20, 4, 9},    // wide/flat
      {3, 17, 11},   // thin/tall
  };
  for (const auto& name : algorithm_names()) {
    for (const auto& prob : probs) {
      cases.push_back({name, prob});
    }
  }
  return cases;
}

class AllAlgorithms : public ::testing::TestWithParam<Case> {};

TEST_P(AllAlgorithms, LruCoversIterationSpaceExactlyOnce) {
  const Case& c = GetParam();
  Machine machine(small_quadcore(), Policy::kLru);
  FmaCoverage coverage(machine);
  make_algorithm(c.algorithm)->run(machine, c.prob, small_quadcore());
  EXPECT_TRUE(coverage.complete(c.prob));
  EXPECT_EQ(machine.stats().total_fmas(), c.prob.fmas());
}

TEST_P(AllAlgorithms, IdealCoversIterationSpaceAndDrainsCaches) {
  const Case& c = GetParam();
  const AlgorithmPtr alg = make_algorithm(c.algorithm);
  if (!alg->supports_ideal()) GTEST_SKIP() << "no IDEAL management";
  Machine machine(small_quadcore(), Policy::kIdeal);
  FmaCoverage coverage(machine);
  alg->run(machine, c.prob, small_quadcore());
  EXPECT_TRUE(coverage.complete(c.prob));
  machine.assert_empty();  // every load was paired with an evict
}

TEST_P(AllAlgorithms, UsesMultipleCoresOnLargeEnoughProblems) {
  const Case& c = GetParam();
  if (c.prob.m * c.prob.n < 16) GTEST_SKIP() << "too small to spread";
  Machine machine(small_quadcore(), Policy::kLru);
  FmaCoverage coverage(machine);
  make_algorithm(c.algorithm)->run(machine, c.prob, small_quadcore());
  EXPECT_GE(coverage.cores_used(), 2) << "work should be parallel";
}

TEST_P(AllAlgorithms, NeverBeatsLowerBoundsUnderIdeal) {
  const Case& c = GetParam();
  const AlgorithmPtr alg = make_algorithm(c.algorithm);
  if (!alg->supports_ideal()) GTEST_SKIP();
  const MachineConfig cfg = small_quadcore();
  Machine machine(cfg, Policy::kIdeal);
  alg->run(machine, c.prob, cfg);
  // The bounds are asymptotic in spirit but valid for any size; allow the
  // tiniest numeric slack.
  EXPECT_GE(static_cast<double>(machine.stats().ms()) + 1e-9,
            ms_lower_bound(c.prob, cfg.cs) * 0.999);
  EXPECT_GE(static_cast<double>(machine.stats().md()) + 1e-9,
            md_lower_bound(c.prob, cfg.p, cfg.cd) * 0.999);
}

TEST_P(AllAlgorithms, LruInclusivityMaintained) {
  const Case& c = GetParam();
  Machine machine(small_quadcore(), Policy::kLru);
  make_algorithm(c.algorithm)->run(machine, c.prob, small_quadcore());
  machine.check_inclusive();
}

INSTANTIATE_TEST_SUITE_P(Schedules, AllAlgorithms,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, AllNamesConstruct) {
  for (const auto& name : algorithm_names()) {
    const AlgorithmPtr alg = make_algorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_EQ(alg->name(), name);
    EXPECT_FALSE(alg->label().empty());
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("strassen"), Error);
  EXPECT_THROW(make_algorithm(""), Error);
}

TEST(Registry, OnlyOuterProductLacksIdealSupport) {
  for (const auto& name : algorithm_names()) {
    EXPECT_EQ(make_algorithm(name)->supports_ideal(), name != "outer-product")
        << name;
  }
}

}  // namespace
}  // namespace mcmm
