// util/warnings sink under concurrency.
//
// The sink contract: emit_warning copies the installed sink under the
// mutex and invokes it outside, so a sink swap is atomic against
// concurrent emitters and every message is delivered to exactly one sink
// generation.  The deterministic interleaving proof lives in the
// model-check scenario "warnings/concurrent-sink"; this file exercises the
// same contract with real ThreadPool workers (and runs under TSan in CI).
#include "util/warnings.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "gemm/thread_pool.hpp"

namespace mcmm {
namespace {

TEST(Warnings, CaptureCollectsInOrderSingleThread) {
  ScopedWarningCapture capture;
  emit_warning("one");
  emit_warning("two");
  EXPECT_EQ(capture.messages(), (std::vector<std::string>{"one", "two"}));
}

TEST(Warnings, NestedCapturesRestoreLifo) {
  ScopedWarningCapture outer;
  {
    ScopedWarningCapture inner;
    emit_warning("inner-msg");
    EXPECT_EQ(inner.messages().size(), 1u);
  }
  emit_warning("outer-msg");
  EXPECT_EQ(outer.messages(), (std::vector<std::string>{"outer-msg"}));
}

TEST(Warnings, ConcurrentEmitFromPoolWorkers) {
  ScopedWarningCapture capture;
  ThreadPool pool(4);
  constexpr int kPerWorker = 50;
  pool.run_on_all([](int core) {
    for (int i = 0; i < kPerWorker; ++i) {
      // Built by append: GCC 12's -O2 inliner raises a spurious
      // -Wrestrict on the equivalent operator+ chain.
      std::string msg = "w";
      msg += std::to_string(core);
      msg += '-';
      msg += std::to_string(i);
      emit_warning(msg);
    }
  });
  const std::vector<std::string> messages = capture.messages();
  ASSERT_EQ(messages.size(), static_cast<std::size_t>(4 * kPerWorker));
  // Per-worker messages arrive in program order even though workers
  // interleave arbitrarily.
  int next[4] = {0, 0, 0, 0};
  for (const std::string& m : messages) {
    ASSERT_GE(m.size(), 4u);
    const int core = m[1] - '0';
    ASSERT_TRUE(core >= 0 && core < 4) << m;
    const int seq = std::stoi(m.substr(3));
    EXPECT_EQ(seq, next[core]) << "worker stream reordered: " << m;
    ++next[core];
  }
}

TEST(Warnings, SinkSwapRacingEmittersLosesNothing) {
  // Workers hammer emit_warning while the main thread repeatedly swaps
  // between two capturing sinks; afterwards every message must have landed
  // in exactly one of them (conservation), with none leaking to stderr.
  struct Tally {
    std::mutex m;
    std::vector<std::string> messages;
  };
  auto a = std::make_shared<Tally>();
  auto b = std::make_shared<Tally>();
  auto sink_into = [](std::shared_ptr<Tally> t) -> WarningSink {
    return [t](const std::string& msg) {
      std::lock_guard<std::mutex> lock(t->m);
      t->messages.push_back(msg);
    };
  };

  const WarningSink original = set_warning_sink(sink_into(a));
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 200;
  {
    ThreadPool pool(kWorkers);
    std::atomic<bool> done{false};
    std::thread swapper([&] {
      bool use_b = true;
      while (!done.load(std::memory_order_relaxed)) {
        set_warning_sink(sink_into(use_b ? b : a));
        use_b = !use_b;
        std::this_thread::yield();
      }
    });
    pool.run_on_all([](int core) {
      for (int i = 0; i < kPerWorker; ++i) {
        emit_warning(std::to_string(core * kPerWorker + i));
      }
    });
    done.store(true, std::memory_order_relaxed);
    swapper.join();
  }
  set_warning_sink(original);

  std::vector<int> seen;
  for (const auto& t : {a, b}) {
    std::lock_guard<std::mutex> lock(t->m);
    for (const std::string& m : t->messages) seen.push_back(std::stoi(m));
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kWorkers * kPerWorker));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kWorkers * kPerWorker; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i)
        << "message lost or duplicated";
  }
}

}  // namespace
}  // namespace mcmm
