#include "lu/lu_pivot.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lu/lu_kernel.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

Matrix general_matrix(std::int64_t n, std::uint64_t seed) {
  Matrix a(n, n);
  a.fill_random(seed);  // NOT diagonally dominant: pivoting required
  return a;
}

TEST(LuPivoted, HandlesMatricesThatBreakPivotFreeLu) {
  // Zero on the diagonal: the pivot-free kernel must fail, the pivoted
  // one must sail through.
  Matrix a(2, 2);
  a.at(0, 0) = 0;
  a.at(0, 1) = 1;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  Matrix no_pivot = a;
  EXPECT_THROW(lu_factor_unblocked(no_pivot), Error);
  Matrix lu = a;
  const PivotVector pivots = lu_factor_pivoted(lu);
  EXPECT_LT(lu_pivoted_residual(a, lu, pivots), 1e-14);
  EXPECT_EQ(pivots[0], 1) << "row 1 must be swapped up";
}

TEST(LuPivoted, ResidualTinyOnGeneralMatrices) {
  for (const std::int64_t n : {1, 2, 7, 16, 33, 64}) {
    const Matrix a = general_matrix(n, 1000 + static_cast<std::uint64_t>(n));
    Matrix lu = a;
    const PivotVector pivots = lu_factor_pivoted(lu);
    EXPECT_LT(lu_pivoted_residual(a, lu, pivots), 1e-12) << "n=" << n;
  }
}

TEST(LuPivoted, PivotIndicesAreInRange) {
  const std::int64_t n = 24;
  const Matrix a = general_matrix(n, 7);
  Matrix lu = a;
  const PivotVector pivots = lu_factor_pivoted(lu);
  ASSERT_EQ(static_cast<std::int64_t>(pivots.size()), n);
  for (std::int64_t k = 0; k < n; ++k) {
    EXPECT_GE(pivots[static_cast<std::size_t>(k)], k) << "no upward swaps";
    EXPECT_LT(pivots[static_cast<std::size_t>(k)], n);
  }
}

TEST(LuPivoted, UnitLMagnitudesBoundedByOne) {
  // The whole point of partial pivoting: |L[i][k]| <= 1.
  const Matrix a = general_matrix(32, 9);
  Matrix lu = a;
  lu_factor_pivoted(lu);
  for (std::int64_t i = 0; i < 32; ++i) {
    for (std::int64_t k = 0; k < i; ++k) {
      EXPECT_LE(std::fabs(lu.at(i, k)), 1.0 + 1e-12);
    }
  }
}

class LuPivotedBlockedSizes
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LuPivotedBlockedSizes, MatchesUnblockedFactorsAndPivots) {
  const auto [n, q] = GetParam();
  const Matrix a = general_matrix(n, 42 + static_cast<std::uint64_t>(n * q));
  Matrix expect = a;
  const PivotVector expect_piv = lu_factor_pivoted(expect);
  Matrix got = a;
  const PivotVector got_piv = lu_factor_pivoted_blocked(got, q);
  EXPECT_EQ(got_piv, expect_piv) << "identical pivot choices";
  EXPECT_LT(Matrix::max_abs_diff(got, expect), 1e-10 * n);
  EXPECT_LT(lu_pivoted_residual(a, got, got_piv), 1e-12);
}

std::string pivot_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string name = "n";
  name += std::to_string(std::get<0>(info.param));
  name += "q";
  name += std::to_string(std::get<1>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LuPivotedBlockedSizes,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(8, 4),
                      std::make_tuple(17, 4), std::make_tuple(32, 8),
                      std::make_tuple(45, 7), std::make_tuple(64, 128)),
    pivot_case_name);

TEST(LuPivoted, SolvesGeneralSystems) {
  const std::int64_t n = 40;
  const Matrix a = general_matrix(n, 11);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x_true[static_cast<std::size_t>(i)] = std::sin(0.3 * static_cast<double>(i));
  }
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      b[static_cast<std::size_t>(i)] +=
          a.at(i, j) * x_true[static_cast<std::size_t>(j)];
    }
  }
  Matrix lu = a;
  const PivotVector pivots = lu_factor_pivoted_blocked(lu, 8);
  const std::vector<double> x = lu_solve_pivoted(lu, pivots, b);
  for (std::int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST(LuPivoted, AgreesWithPivotFreeOnDominantMatrices) {
  // On diagonally dominant inputs partial pivoting never swaps, so the
  // factors coincide with the pivot-free kernel exactly.
  const std::int64_t n = 24;
  const Matrix a = diagonally_dominant_matrix(n, 3);
  Matrix plain = a;
  lu_factor_unblocked(plain);
  Matrix pivoted = a;
  const PivotVector pivots = lu_factor_pivoted(pivoted);
  for (std::int64_t k = 0; k < n; ++k) {
    EXPECT_EQ(pivots[static_cast<std::size_t>(k)], k) << "no swaps expected";
  }
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(plain, pivoted), 0.0);
}

TEST(LuPivoted, DetectsSingularMatrix) {
  Matrix a(3, 3, 0.0);
  a.at(0, 0) = 1;
  a.at(1, 1) = 1;  // third row/column all zero
  Matrix lu = a;
  EXPECT_THROW(lu_factor_pivoted(lu), Error);
  Matrix rect(2, 3);
  EXPECT_THROW(lu_factor_pivoted(rect), Error);
  Matrix ok = general_matrix(3, 5);
  Matrix lu2 = ok;
  const PivotVector pivots = lu_factor_pivoted(lu2);
  EXPECT_THROW(lu_solve_pivoted(lu2, pivots, std::vector<double>(2)), Error);
  EXPECT_THROW(lu_solve_pivoted(lu2, PivotVector{0}, std::vector<double>(3)),
               Error);
}

}  // namespace
}  // namespace mcmm
