// Parallel LU (real data) and the two simulated LU schedules.
#include <gtest/gtest.h>

#include <limits>

#include "lu/lu_kernel.hpp"
#include "lu/lu_sim.hpp"
#include "lu/parallel_lu.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

// ---------------------------------------------------------------------------
// parallel_lu_factor
// ---------------------------------------------------------------------------

class ParallelLuSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ParallelLuSizes, MatchesSequentialBlocked) {
  const auto [n, q, workers] = GetParam();
  const Matrix original = diagonally_dominant_matrix(n, 13);
  Matrix expect = original;
  lu_factor_blocked(expect, q);
  Matrix got = original;
  ThreadPool pool(workers);
  parallel_lu_factor(got, q, pool);
  EXPECT_LT(Matrix::max_abs_diff(got, expect), 1e-9 * n);
  EXPECT_LT(lu_residual(original, got), 1e-12);
}

std::string plu_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  std::string name = "n";
  name += std::to_string(std::get<0>(info.param));
  name += "q";
  name += std::to_string(std::get<1>(info.param));
  name += "w";
  name += std::to_string(std::get<2>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelLuSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(16, 4, 4),
                      std::make_tuple(33, 8, 4), std::make_tuple(64, 16, 2),
                      std::make_tuple(48, 6, 3), std::make_tuple(40, 64, 4)),
    plu_case_name);

TEST(ParallelLu, RejectsBadInput) {
  ThreadPool pool(2);
  Matrix rect(3, 4);
  EXPECT_THROW(parallel_lu_factor(rect, 2, pool), Error);
  Matrix square(4, 4, 1.0);
  EXPECT_THROW(parallel_lu_factor(square, 0, pool), Error);
}

// ---------------------------------------------------------------------------
// Simulated LU schedules
// ---------------------------------------------------------------------------

TEST(LuWorkCounts, ClosedForms) {
  const LuWork w = lu_work(6);
  EXPECT_EQ(w.factor_ops, 6);
  EXPECT_EQ(w.trsm_ops, 30);
  EXPECT_EQ(w.update_ops, 6 * 5 * 11 / 6);
  EXPECT_EQ(w.total(), 6 + 30 + 55);
}

TEST(LuSim, BothSchedulesDoIdenticalWork) {
  for (const std::int64_t n : {1, 2, 5, 12}) {
    Machine right(paper_quadcore(), Policy::kLru);
    const LuWork wr = simulate_lu_right_looking(right, n);
    Machine left(paper_quadcore(), Policy::kLru);
    const LuWork wl = simulate_lu_left_looking(left, n);
    const LuWork expect = lu_work(n);
    EXPECT_EQ(wr.factor_ops, expect.factor_ops);
    EXPECT_EQ(wr.trsm_ops, expect.trsm_ops);
    EXPECT_EQ(wr.update_ops, expect.update_ops);
    EXPECT_EQ(wl.factor_ops, expect.factor_ops);
    EXPECT_EQ(wl.trsm_ops, expect.trsm_ops);
    EXPECT_EQ(wl.update_ops, expect.update_ops);
    // Identical kernels -> identical total distributed-level accesses.
    std::int64_t right_total = 0, left_total = 0;
    for (std::size_t c = 0; c < 4; ++c) {
      right_total +=
          right.stats().dist_hits[c] + right.stats().dist_misses[c];
      left_total += left.stats().dist_hits[c] + left.stats().dist_misses[c];
    }
    EXPECT_EQ(right_total, left_total) << "n=" << n;
  }
}

TEST(LuSim, PanelledLeftLookingBeatsRightLookingOnSharedMisses) {
  // The maximum-reuse principle applied to LU: once the trailing matrix
  // outgrows the shared cache the right-looking schedule re-faults it
  // every step (~n^3/3 misses), while the panelled left-looking one
  // fetches each L block once per PANEL instead of once per update,
  // dividing the dominant term by the panel width.
  MachineConfig cfg = mcmm::testing::paper_quadcore();  // CS = 977, CD = 21
  const std::int64_t n = 48;  // 48^2 = 2304 blocks >> CS
  Machine right(cfg, Policy::kLru);
  simulate_lu_right_looking(right, n);
  Machine left(cfg, Policy::kLru);
  const std::int64_t width = lu_panel_width(cfg, n);
  EXPECT_GE(width, 4);
  simulate_lu_left_looking(left, n, width);
  EXPECT_LT(left.stats().ms() * 2, right.stats().ms())
      << "panel width " << width << ": at least 2x fewer shared misses";
}

TEST(LuSim, WiderPanelsMonotonicallyReduceSharedMisses) {
  // n^2 = 2304 blocks >> CS = 977, so capacity misses dominate and the
  // panel width's L-reuse effect is visible (at n <= 32 the matrix nearly
  // fits and every width sees only cold misses).
  MachineConfig cfg = mcmm::testing::paper_quadcore();
  const std::int64_t n = 48;
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t width : {1, 2, 4, 8}) {
    Machine machine(cfg, Policy::kLru);
    simulate_lu_left_looking(machine, n, width);
    EXPECT_LT(machine.stats().ms(), prev) << "width " << width;
    prev = machine.stats().ms();
  }
}

TEST(LuSim, PanelWidthDefaultsAreSane) {
  MachineConfig cfg = mcmm::testing::paper_quadcore();
  EXPECT_GE(lu_panel_width(cfg, 48), 1);
  EXPECT_LE(lu_panel_width(cfg, 48), cfg.cd - 2);
  // Huge matrices force width 1; tiny caches too.
  EXPECT_EQ(lu_panel_width(cfg, 100000), 1);
  MachineConfig tiny;
  tiny.p = 4;
  tiny.cs = 16;
  tiny.cd = 4;
  EXPECT_GE(lu_panel_width(tiny, 32), 1);
}

TEST(LuSim, TinyProblemsFitEntirelyInCache) {
  // n^2 + margin <= CD: every block misses once (cold) and stays.
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  Machine machine(cfg, Policy::kLru);
  simulate_lu_right_looking(machine, 2);
  EXPECT_EQ(machine.stats().ms(), 4) << "each of the 4 blocks loads once";
}

TEST(LuSim, MissesNeverBelowColdFloor) {
  for (const std::int64_t n : {4, 8, 16}) {
    Machine machine(paper_quadcore(), Policy::kLru);
    simulate_lu_left_looking(machine, n);
    EXPECT_GE(machine.stats().ms(), n * n)
        << "every block must be loaded at least once";
  }
}

TEST(LuSim, DeterministicAcrossRuns) {
  Machine a(paper_quadcore(), Policy::kLru);
  simulate_lu_left_looking(a, 10);
  Machine b(paper_quadcore(), Policy::kLru);
  simulate_lu_left_looking(b, 10);
  EXPECT_EQ(a.stats().ms(), b.stats().ms());
  EXPECT_EQ(a.stats().md(), b.stats().md());
}

TEST(LuSim, RejectsIdealPolicyAndBadSize) {
  Machine ideal(paper_quadcore(), Policy::kIdeal);
  EXPECT_THROW(simulate_lu_right_looking(ideal, 4), Error);
  Machine lru(paper_quadcore(), Policy::kLru);
  EXPECT_THROW(simulate_lu_left_looking(lru, 0), Error);
}

TEST(LuSim, LowerBoundScalesCubically) {
  const double b16 = lu_ms_lower_bound(16, 977);
  const double b32 = lu_ms_lower_bound(32, 977);
  EXPECT_GT(b32, 7.5 * b16);
  EXPECT_LT(b32, 8.5 * b16);
}

}  // namespace
}  // namespace mcmm
