#include "analysis/params.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace mcmm {
namespace {

MachineConfig cfg(int p, std::int64_t cs, std::int64_t cd, double ss = 1.0,
                  double sd = 1.0) {
  MachineConfig c;
  c.p = p;
  c.cs = cs;
  c.cd = cd;
  c.sigma_s = ss;
  c.sigma_d = sd;
  return c;
}

// ---------------------------------------------------------------------------
// SharedOpt / DistributedOpt parameters
// ---------------------------------------------------------------------------

TEST(SharedOptParams, PaperValues) {
  EXPECT_EQ(shared_opt_params(977).lambda, 30);
  EXPECT_EQ(shared_opt_params(245).lambda, 15);
  EXPECT_EQ(shared_opt_params(157).lambda, 12);
}

TEST(SharedOptParams, RejectsTinyCache) {
  EXPECT_THROW(shared_opt_params(2), Error);
}

TEST(DistributedOptParams, PaperValues) {
  const auto p21 = distributed_opt_params(cfg(4, 977, 21));
  EXPECT_EQ(p21.mu, 4);
  EXPECT_EQ(p21.grid.r, 2);
  EXPECT_EQ(p21.grid.c, 2);
  EXPECT_EQ(p21.tile_rows(), 8);
  EXPECT_EQ(p21.tile_cols(), 8);
  const auto p16 = distributed_opt_params(cfg(4, 977, 16));
  EXPECT_EQ(p16.mu, 3);
  const auto p6 = distributed_opt_params(cfg(4, 245, 6));
  EXPECT_EQ(p6.mu, 1) << "the q=64 regime where DistributedOpt degrades";
}

TEST(DistributedOptParams, RectangularGridsForNonSquareP) {
  // The paper assumes sqrt(p) integer; the library generalises to the
  // most balanced factorisation.
  const auto p2 = distributed_opt_params(cfg(2, 977, 21));
  EXPECT_EQ(p2.grid.r, 1);
  EXPECT_EQ(p2.grid.c, 2);
  EXPECT_EQ(p2.tile_rows(), 4);
  EXPECT_EQ(p2.tile_cols(), 8);
  const auto p6 = distributed_opt_params(cfg(6, 977, 21));
  EXPECT_EQ(p6.grid.r, 2);
  EXPECT_EQ(p6.grid.c, 3);
  const auto p8 = distributed_opt_params(cfg(8, 977, 21));
  EXPECT_EQ(p8.grid.r, 2);
  EXPECT_EQ(p8.grid.c, 4);
  const auto p9 = distributed_opt_params(cfg(9, 977, 21));
  EXPECT_TRUE(p9.grid.square());
  EXPECT_EQ(p9.grid.r, 3);
}

TEST(DistributedOptParams, RejectsTinyDistributedCache) {
  EXPECT_THROW(distributed_opt_params(cfg(4, 977, 2)), Error);
}

// ---------------------------------------------------------------------------
// Tradeoff: alpha_num closed form
// ---------------------------------------------------------------------------

TEST(TradeoffAlphaNum, SingularityAtOneIsRemovable) {
  const std::int64_t cs = 977;
  const double at_one = tradeoff_alpha_num(cs, 1.0);
  EXPECT_NEAR(at_one, std::sqrt(cs / 3.0), 1e-6);
  // Continuity: approach from both sides.
  EXPECT_NEAR(tradeoff_alpha_num(cs, 1.0 + 1e-7), at_one, 1e-3);
  EXPECT_NEAR(tradeoff_alpha_num(cs, 1.0 - 1e-7), at_one, 1e-3);
}

TEST(TradeoffAlphaNum, LimitsMatchPaper) {
  const std::int64_t cs = 977;
  // sigma_D >> sigma_S (x -> inf): alpha -> sqrt(CS) (shared-optimised).
  EXPECT_NEAR(tradeoff_alpha_num(cs, 1e9), std::sqrt(static_cast<double>(cs)),
              1.0);
  // sigma_S >> sigma_D (x -> 0): alpha -> 0 (clamped to sqrt(p) mu later).
  EXPECT_LT(tradeoff_alpha_num(cs, 1e-9), 1.0);
}

TEST(TradeoffAlphaNum, MonotoneInX) {
  const std::int64_t cs = 977;
  double prev = 0;
  for (double x = 0.05; x < 100; x *= 1.5) {
    const double a = tradeoff_alpha_num(cs, x);
    EXPECT_GE(a, prev - 1e-9) << "alpha_num should grow with x at x=" << x;
    prev = a;
  }
}

// The closed form must agree with direct numeric minimisation of F(alpha).
TEST(TradeoffAlphaNum, MatchesNumericMinimiserOfObjective) {
  for (const std::int64_t cs : {157L, 245L, 977L}) {
    for (const double x : {0.1, 0.5, 1.0, 2.0, 4.0, 20.0}) {
      const int p = 4;
      const double sigma_s = 1.0;
      const double sigma_d = x * sigma_s / p;  // so p sigma_d / sigma_s == x
      double best_alpha = 1;
      double best_val = 1e300;
      const double amax = std::sqrt(static_cast<double>(cs)) - 1e-6;
      for (double a = 0.5; a < amax; a += 0.01) {
        const double v = tradeoff_objective(cs, p, sigma_s, sigma_d, a);
        if (v < best_val) {
          best_val = v;
          best_alpha = a;
        }
      }
      EXPECT_NEAR(tradeoff_alpha_num(cs, x), best_alpha, 0.05)
          << "cs=" << cs << " x=" << x;
    }
  }
}

// ---------------------------------------------------------------------------
// Tradeoff: full parameter selection
// ---------------------------------------------------------------------------

TEST(TradeoffParams, RespectsCapacityConstraint) {
  for (const auto& [cs, cd] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {977, 21}, {977, 16}, {245, 6}, {245, 4}, {157, 4}, {157, 3}}) {
    for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const MachineConfig c = cfg(4, cs, cd).with_bandwidth_ratio(r);
      const TradeoffParams t = tradeoff_params(c);
      EXPECT_LE(t.alpha * t.alpha + 2 * t.alpha * t.beta, cs)
          << "cs=" << cs << " cd=" << cd << " r=" << r;
      EXPECT_GE(t.beta, 1);
      EXPECT_GE(t.alpha, t.grain());
      EXPECT_EQ(t.alpha % t.grain(), 0)
          << "alpha must tile into the core grid of mu-sub-blocks";
    }
  }
}

TEST(TradeoffParams, FastDistributedCachesChooseSharedOptShape) {
  // sigma_D >> sigma_S: the tradeoff picks the largest alpha the sqrt(p)*mu
  // grid allows below alpha_max (the paper: "chooses shared-cache optimized
  // version"); the cache left over then goes into beta, which only helps MD.
  const MachineConfig c = cfg(4, 977, 21, /*ss=*/1e-3, /*sd=*/1.0);
  const TradeoffParams t = tradeoff_params(c);
  EXPECT_GE(t.alpha, t.alpha_max - t.grain())
      << "within one grid step of alpha_max ~ sqrt(977)";
  EXPECT_EQ(t.beta, (977 - t.alpha * t.alpha) / (2 * t.alpha));
}

TEST(TradeoffParams, FastSharedCacheChoosesDistributedOptShape) {
  // sigma_S >> sigma_D: alpha collapses to sqrt(p) mu.
  const MachineConfig c = cfg(4, 977, 21, /*ss=*/1.0, /*sd=*/1e-3);
  const TradeoffParams t = tradeoff_params(c);
  EXPECT_EQ(t.alpha, t.grain());
  EXPECT_TRUE(t.persistent_c());
}

TEST(TradeoffParams, BetaMatchesClosedForm) {
  const MachineConfig c = cfg(4, 977, 21);
  const TradeoffParams t = tradeoff_params(c);
  EXPECT_EQ(t.beta,
            std::max<std::int64_t>((977 - t.alpha * t.alpha) / (2 * t.alpha), 1));
}

TEST(TradeoffParams, RectangularGridsForNonSquareP) {
  // p = 8 -> 2 x 4 grid: alpha must be a multiple of mu * lcm(2, 4).
  const TradeoffParams t8 = tradeoff_params(cfg(8, 977, 21));
  EXPECT_EQ(t8.grid.r, 2);
  EXPECT_EQ(t8.grid.c, 4);
  EXPECT_EQ(t8.grain(), 4 * 4);
  EXPECT_EQ(t8.alpha % t8.grain(), 0);
  EXPECT_FALSE(t8.persistent_c()) << "no one-sub-block case off square grids";
  // Primes degrade to a 1 x p grid but still work.
  const TradeoffParams t5 = tradeoff_params(cfg(5, 977, 21));
  EXPECT_EQ(t5.grid.r, 1);
  EXPECT_EQ(t5.grid.c, 5);
  EXPECT_EQ(t5.grain(), 5 * 4);
}

TEST(TradeoffObjective, RejectsOutOfDomainAlpha) {
  EXPECT_THROW(tradeoff_objective(100, 4, 1, 1, 0), Error);
  EXPECT_THROW(tradeoff_objective(100, 4, 1, 1, 10.0), Error);
  EXPECT_NO_THROW(tradeoff_objective(100, 4, 1, 1, 9.9));
}

}  // namespace
}  // namespace mcmm
