// Full cross-product sweep: every schedule under every experimental
// setting on several problem shapes — the invariants that must hold no
// matter how the pieces are combined.
#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "exp/experiment.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

struct Combo {
  std::string algorithm;
  Setting setting;
  Problem prob;
};

std::vector<Combo> combos() {
  std::vector<Combo> out;
  const std::vector<Problem> probs = {{10, 10, 10}, {17, 5, 9}, {4, 24, 6}};
  for (const auto& name : algorithm_names()) {
    for (const Setting s : {Setting::kIdeal, Setting::kLru50,
                            Setting::kLruFull, Setting::kLruDouble}) {
      for (const auto& prob : probs) {
        out.push_back({name, s, prob});
      }
    }
  }
  return out;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Combo& c = info.param;
  std::string name = c.algorithm + "_" + to_string(c.setting) + "_" +
                     std::to_string(c.prob.m) + "x" +
                     std::to_string(c.prob.n) + "x" + std::to_string(c.prob.z);
  for (char& ch : name) {
    if (ch == '-' || ch == '(' || ch == ')') ch = '_';
  }
  return name;
}

class SettingsMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(SettingsMatrix, InvariantsHoldForEveryCombination) {
  const Combo& c = GetParam();
  const MachineConfig cfg = paper_quadcore();
  const RunResult res = run_experiment(c.algorithm, c.prob, cfg, c.setting);

  // Work conservation.
  EXPECT_EQ(res.stats.total_fmas(), c.prob.fmas());

  // Every block must enter each level at least once: cold floors.
  const std::int64_t footprint =
      c.prob.m * c.prob.n + c.prob.m * c.prob.z + c.prob.z * c.prob.n;
  EXPECT_GE(res.ms, footprint) << "every input/output block loads once";
  EXPECT_GE(res.md * cfg.p, footprint)
      << "the union of private caches sees every block";

  // Tdata is exactly the linear combination the paper defines.
  EXPECT_DOUBLE_EQ(res.tdata, static_cast<double>(res.ms) / cfg.sigma_s +
                                  static_cast<double>(res.md) / cfg.sigma_d);

  // Miss counts can never exceed total accesses (3 per FMA) plus the
  // explicit IDEAL staging traffic, which is itself bounded by MS+MD.
  EXPECT_LE(res.md, 3 * c.prob.fmas());

  // The declared machine is what the setting says it is.
  switch (c.setting) {
    case Setting::kIdeal:
    case Setting::kLruFull:
      EXPECT_EQ(res.declared.cs, cfg.cs);
      EXPECT_EQ(res.physical.cs, cfg.cs);
      break;
    case Setting::kLru50:
      EXPECT_EQ(res.declared.cs, cfg.cs / 2);
      EXPECT_EQ(res.physical.cs, cfg.cs);
      break;
    case Setting::kLruDouble:
      EXPECT_EQ(res.declared.cs, cfg.cs);
      EXPECT_EQ(res.physical.cs, 2 * cfg.cs);
      break;
  }
}

TEST_P(SettingsMatrix, CcrsAreConsistentWithCounts) {
  const Combo& c = GetParam();
  const RunResult res =
      run_experiment(c.algorithm, c.prob, paper_quadcore(), c.setting);
  const double ccr_s = res.stats.ccr_shared();
  EXPECT_DOUBLE_EQ(ccr_s, static_cast<double>(res.ms) /
                              static_cast<double>(c.prob.fmas()));
  EXPECT_GT(res.stats.ccr_distributed(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, SettingsMatrix,
                         ::testing::ValuesIn(combos()), combo_name);

}  // namespace
}  // namespace mcmm
