#include "sim/fixed_hash_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mcmm {
namespace {

TEST(FixedHashMap, InsertFindErase) {
  FixedHashMap m(8);
  EXPECT_EQ(m.size(), 0u);
  m.insert(42, 7);
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7u);
  EXPECT_EQ(m.find(43), nullptr);
  EXPECT_TRUE(m.erase(42));
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_EQ(m.size(), 0u);
}

TEST(FixedHashMap, FillToCapacity) {
  FixedHashMap m(64);
  for (std::uint64_t k = 0; k < 64; ++k) m.insert(k * 1000 + 1, static_cast<std::uint32_t>(k));
  EXPECT_EQ(m.size(), 64u);
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_NE(m.find(k * 1000 + 1), nullptr);
    EXPECT_EQ(*m.find(k * 1000 + 1), k);
  }
}

TEST(FixedHashMap, ValueIsMutableThroughFind) {
  FixedHashMap m(4);
  m.insert(5, 1);
  *m.find(5) = 99;
  EXPECT_EQ(*m.find(5), 99u);
}

TEST(FixedHashMap, ForEachVisitsAllEntries) {
  FixedHashMap m(16);
  for (std::uint64_t k = 1; k <= 10; ++k) m.insert(k, static_cast<std::uint32_t>(k * 2));
  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  m.for_each([&](std::uint64_t k, std::uint32_t v) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 10u);
  for (std::uint64_t k = 1; k <= 10; ++k) EXPECT_EQ(seen[k], k * 2);
}

TEST(FixedHashMap, Clear) {
  FixedHashMap m(8);
  for (std::uint64_t k = 1; k <= 8; ++k) m.insert(k, 0);
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  for (std::uint64_t k = 1; k <= 8; ++k) EXPECT_EQ(m.find(k), nullptr);
  m.insert(3, 9);  // usable after clear
  EXPECT_EQ(*m.find(3), 9u);
}

// Backward-shift deletion is the subtle part: hammer it against a reference
// map with a deterministic mixed workload that forces long probe chains.
TEST(FixedHashMap, StressAgainstReference) {
  constexpr std::size_t kCap = 128;
  FixedHashMap m(kCap);
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  std::uint64_t rng = 12345;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 200000; ++step) {
    // Small key space to force frequent collisions and re-insertions.
    const std::uint64_t key = next() % 200 + 1;
    const bool present = ref.count(key) > 0;
    ASSERT_EQ(m.contains(key), present) << "step " << step;
    if (present) {
      ASSERT_EQ(*m.find(key), ref[key]);
      if (next() % 2 == 0) {
        m.erase(key);
        ref.erase(key);
      } else {
        const auto v = static_cast<std::uint32_t>(next());
        *m.find(key) = v;
        ref[key] = v;
      }
    } else if (ref.size() < kCap) {
      const auto v = static_cast<std::uint32_t>(next());
      m.insert(key, v);
      ref[key] = v;
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final full cross-check.
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), v);
  }
}

}  // namespace
}  // namespace mcmm
