// Cross-module integration tests:
//  * the simulator's FMA trace drives a real computation that must equal
//    the reference product (schedule correctness end-to-end);
//  * the paper's headline qualitative results hold at small scale;
//  * the LRU(2C) runs stay within 2x of the IDEAL formulas (Figures 4-6,
//    the Frigo et al. competitiveness experiment).
#include <gtest/gtest.h>

#include "alg/registry.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "exp/experiment.hpp"
#include "gemm/kernel.hpp"
#include "gemm/validate.hpp"
#include "sim/machine.hpp"
#include "test_helpers.hpp"

namespace mcmm {
namespace {

using mcmm::testing::paper_quadcore;

// Drive real 1x1-block arithmetic from the simulated schedule's FMA trace:
// if and only if the schedule covers each (i,j,k) exactly once, the result
// equals the reference product.
TEST(Integration, SimulatedTraceComputesTheRealProduct) {
  const Problem prob{18, 14, 10};
  Matrix a(prob.m, prob.z), b(prob.z, prob.n);
  a.fill_random(100);
  b.fill_random(200);
  Matrix expect(prob.m, prob.n);
  gemm_reference(expect, a, b);

  for (const auto& name : algorithm_names()) {
    Matrix got(prob.m, prob.n);
    Machine machine(paper_quadcore(), Policy::kLru);
    machine.set_fma_observer(
        [&](int, std::int64_t i, std::int64_t j, std::int64_t k) {
          got.at(i, j) += a.at(i, k) * b.at(k, j);
        });
    make_algorithm(name)->run(machine, prob, paper_quadcore());
    EXPECT_TRUE(gemm_matches(got, expect, prob.z)) << name;
  }
}

// Figure 7's shape: Shared Opt < Shared Equal < Outer Product on MS.
TEST(Integration, SharedMissRankingMatchesFigure7) {
  const Problem prob = Problem::square(60);
  const MachineConfig cfg = paper_quadcore();
  const auto ms = [&](const char* name) {
    return run_experiment(name, prob, cfg, Setting::kLru50).ms;
  };
  const auto opt = ms("shared-opt");
  const auto equal = ms("shared-equal");
  const auto outer = ms("outer-product");
  EXPECT_LT(opt, equal);
  EXPECT_LT(equal, outer);
}

// Figure 8's shape: Distributed Opt < Distributed Equal < Outer Product on
// MD for q=32 (CD=21)...
TEST(Integration, DistributedMissRankingMatchesFigure8) {
  const Problem prob = Problem::square(60);
  const MachineConfig cfg = paper_quadcore();
  const auto md = [&](const char* name) {
    return run_experiment(name, prob, cfg, Setting::kLru50).md;
  };
  const auto opt = md("distributed-opt");
  const auto equal = md("distributed-equal");
  const auto outer = md("outer-product");
  EXPECT_LT(opt, equal);
  EXPECT_LT(equal, outer);
}

// ...but with q=64 (CD=6 -> mu=1) Distributed Opt loses its edge
// (Figure 8(c)): it no longer beats Distributed Equal meaningfully.
TEST(Integration, DistributedOptDegradesAtMuOne) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 245;
  cfg.cd = 6;
  const Problem prob = Problem::square(60);
  const auto opt =
      run_experiment("distributed-opt", prob, cfg, Setting::kIdeal);
  const auto params = distributed_opt_params(cfg);
  EXPECT_EQ(params.mu, 1);
  // With mu=1 the IDEAL MD is mn/p + 2mnz/p: within 25% of streaming
  // everything; the large-mu advantage is gone.
  EXPECT_GT(static_cast<double>(opt.md),
            0.9 * (static_cast<double>(prob.m * prob.n) / cfg.p +
                   2.0 * static_cast<double>(prob.fmas()) / cfg.p));
}

// Figures 4-6: LRU with doubled caches stays under twice the IDEAL formula.
TEST(Integration, LruDoubleWithinTwiceTheFormula) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob = Problem::square(48);

  const auto shared =
      run_experiment("shared-opt", prob, cfg, Setting::kLruDouble);
  const auto pred_s =
      predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs));
  EXPECT_LE(static_cast<double>(shared.ms), 2.0 * pred_s.ms);

  const auto dist =
      run_experiment("distributed-opt", prob, cfg, Setting::kLruDouble);
  const auto pred_d = predict_distributed_opt(prob, cfg.p,
                                              distributed_opt_params(cfg));
  EXPECT_LE(static_cast<double>(dist.md), 2.0 * pred_d.md);

  const auto trade = run_experiment("tradeoff", prob, cfg, Setting::kLruDouble);
  const auto pred_t = predict_tradeoff(prob, cfg.p, tradeoff_params(cfg));
  EXPECT_LE(trade.tdata, 2.0 * pred_t.tdata(cfg.sigma_s, cfg.sigma_d));
}

// The IDEAL setting can never lose to LRU-50 on the metric an algorithm
// optimises (the omniscient schedule is what LRU approximates).
TEST(Integration, IdealBeatsLru50OnTargetMetric) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob = Problem::square(48);
  EXPECT_LE(run_experiment("shared-opt", prob, cfg, Setting::kIdeal).ms,
            run_experiment("shared-opt", prob, cfg, Setting::kLru50).ms);
  EXPECT_LE(run_experiment("distributed-opt", prob, cfg, Setting::kIdeal).md,
            run_experiment("distributed-opt", prob, cfg, Setting::kLru50).md);
}

// Tdata ranking at balanced bandwidths (Figure 9's shape): the tradeoff is
// best or tied-with-SharedOpt among the six under IDEAL.
TEST(Integration, TradeoffCompetitiveOnTdata) {
  const MachineConfig cfg = paper_quadcore();
  const Problem prob = Problem::square(48);
  const double t_trade =
      run_experiment("tradeoff", prob, cfg, Setting::kIdeal).tdata;
  for (const auto& name : algorithm_names()) {
    const double t = run_experiment(name, prob, cfg, Setting::kIdeal).tdata;
    EXPECT_LE(t_trade, 1.1 * t) << name;
  }
}

}  // namespace
}  // namespace mcmm
