// Every real-data schedule must compute exactly the same product as the
// reference kernel, for divisible and ragged shapes alike.
#include "gemm/parallel_gemm.hpp"

#include <gtest/gtest.h>

#include "gemm/kernel.hpp"
#include "gemm/validate.hpp"
#include "util/error.hpp"

namespace mcmm {
namespace {

struct Shape {
  std::int64_t m, n, z;
};

Tiling small_tiling() {
  Tiling t;
  t.q = 4;
  t.lambda = 3;
  t.mu = 2;
  t.alpha = 4;  // = sqrt(4) * mu
  t.beta = 2;
  return t;
}

using GemmFn = void (*)(Matrix&, const Matrix&, const Matrix&, const Tiling&,
                        ThreadPool&);

struct Case {
  const char* name;
  GemmFn fn;
  Shape shape;
};

class ParallelGemm : public ::testing::TestWithParam<Case> {};

TEST_P(ParallelGemm, MatchesReference) {
  const Case& c = GetParam();
  Matrix a(c.shape.m, c.shape.z);
  Matrix b(c.shape.z, c.shape.n);
  a.fill_random(7);
  b.fill_random(8);
  Matrix expect(c.shape.m, c.shape.n, 0.25);
  Matrix got(c.shape.m, c.shape.n, 0.25);
  gemm_reference(expect, a, b);
  ThreadPool pool(4);
  c.fn(got, a, b, small_tiling(), pool);
  EXPECT_TRUE(gemm_matches(got, expect, c.shape.z))
      << "max diff " << Matrix::max_abs_diff(got, expect);
}

std::vector<Case> cases() {
  const std::vector<std::pair<const char*, GemmFn>> fns = {
      {"shared_opt", &parallel_gemm_shared_opt},
      {"distributed_opt", &parallel_gemm_distributed_opt},
      {"tradeoff", &parallel_gemm_tradeoff},
      {"outer_product", &parallel_gemm_outer_product},
  };
  const std::vector<Shape> shapes = {
      {64, 64, 64},   // multiple of every tile size
      {50, 30, 70},   // ragged blocks
      {1, 1, 1},      // minimal
      {4, 100, 8},    // wide
      {97, 5, 13},    // tall, prime-ish
  };
  std::vector<Case> out;
  for (const auto& [name, fn] : fns) {
    for (const auto& s : shapes) out.push_back({name, fn, s});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedules, ParallelGemm, ::testing::ValuesIn(cases()),
    [](const ::testing::TestParamInfo<Case>& p_info) {
      const Case& c = p_info.param;
      return std::string(c.name) + "_m" + std::to_string(c.shape.m) + "n" +
             std::to_string(c.shape.n) + "z" + std::to_string(c.shape.z);
    });

TEST(ParallelGemm, NonSquareWorkerCountsUseBalancedGrids) {
  // Grid schedules fall back to the most balanced r x c factorisation
  // (1 x 3, 2 x 3, ...) and must stay correct.
  Matrix a(20, 14), b(14, 20);
  a.fill_random(1);
  b.fill_random(2);
  Matrix expect(20, 20);
  gemm_reference(expect, a, b);
  const Tiling t = small_tiling();
  const GemmFn grid_fns[] = {&parallel_gemm_distributed_opt,
                             &parallel_gemm_tradeoff,
                             &parallel_gemm_outer_product};
  for (const int workers : {2, 3, 5, 6, 8}) {
    ThreadPool pool(workers);
    for (const GemmFn fn : grid_fns) {
      Matrix got(20, 20);
      fn(got, a, b, t, pool);
      EXPECT_TRUE(gemm_matches(got, expect, 14)) << workers << " workers";
    }
  }
}

TEST(ParallelGemm, AlphaNotDivisibleByGridStillCovers) {
  // Regression: ceiling-split core regions must cover ragged alpha tiles
  // (a floor split would silently skip the tile's last rows/columns).
  Matrix a(24, 24), b(24, 24);
  a.fill_random(5);
  b.fill_random(6);
  Matrix expect(24, 24);
  gemm_reference(expect, a, b);
  Tiling t = small_tiling();
  t.alpha = 5;  // not divisible by the 2 x 2 grid
  t.mu = 2;
  ThreadPool pool(4);
  Matrix got(24, 24);
  parallel_gemm_tradeoff(got, a, b, t, pool);
  EXPECT_TRUE(gemm_matches(got, expect, 24));
}

TEST(ParallelGemm, SharedOptWorksWithAnyWorkerCount) {
  Matrix a(20, 12), b(12, 20);
  a.fill_random(3);
  b.fill_random(4);
  Matrix expect(20, 20);
  gemm_reference(expect, a, b);
  for (int workers : {1, 2, 3, 5, 8}) {
    Matrix got(20, 20);
    ThreadPool pool(workers);
    parallel_gemm_shared_opt(got, a, b, small_tiling(), pool);
    EXPECT_TRUE(gemm_matches(got, expect, 12)) << workers << " workers";
  }
}

TEST(TilingForHost, ProducesFeasibleParameters) {
  const Tiling t = tiling_for_host(4, 8 << 20, 256 << 10, 64);
  EXPECT_GE(t.lambda, 1);
  EXPECT_GE(t.mu, 1);
  EXPECT_GE(t.alpha, 1);
  EXPECT_GE(t.beta, 1);
  EXPECT_EQ(t.q, 64);
  // alpha must tile into the sqrt(p) grid of mu sub-blocks.
  EXPECT_EQ(t.alpha % (2 * t.mu), 0);
}

TEST(TilingForHost, NonSquarePUsesBalancedGrid) {
  const Tiling t = tiling_for_host(6, 8 << 20, 256 << 10, 32);
  EXPECT_GE(t.lambda, 1);
  EXPECT_GE(t.alpha, 1);
  EXPECT_GE(t.beta, 1);
  // alpha must split over the 2 x 3 grid into whole mu sub-blocks.
  EXPECT_EQ(t.alpha % (t.mu * 6), 0) << "mu * lcm(2,3)";
}

TEST(TilingForHost, RejectsBadArguments) {
  EXPECT_THROW(tiling_for_host(0, 1024, 1024, 32), Error);
  EXPECT_THROW(tiling_for_host(4, 0, 1024, 32), Error);
  EXPECT_THROW(tiling_for_host(4, 1024, 1024, 0), Error);
}

}  // namespace
}  // namespace mcmm
