// Stress tests for ThreadPool, written for the sanitizer builds: many
// short parallel regions back to back (hammers the generation/condvar
// handshake), exception paths under contention, and pool churn.  They pass
// in normal builds too, but their value is running under
// -DMCMM_SANITIZE=thread where any handshake race becomes a report.
#include "gemm/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mcmm {
namespace {

TEST(ThreadPoolStress, ManyShortRegionsBackToBack) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  constexpr int kRegions = 500;
  for (int r = 0; r < kRegions; ++r) {
    pool.run_on_all([&](int core) { sum += core + 1; });
  }
  // Each region adds 1+2+3+4 = 10.
  EXPECT_EQ(sum.load(), kRegions * 10);
}

TEST(ThreadPoolStress, RegionsSynchronizeWithCaller) {
  // Unsynchronized writes to plain (non-atomic) per-worker slots, read by
  // the caller between regions: only correct if run_on_all is a full
  // barrier with release/acquire ordering.  TSan verifies the ordering.
  ThreadPool pool(4);
  std::vector<std::int64_t> slots(4, 0);
  for (int r = 0; r < 200; ++r) {
    pool.run_on_all([&](int core) { slots[static_cast<std::size_t>(core)] += 1; });
    const std::int64_t total =
        std::accumulate(slots.begin(), slots.end(), std::int64_t{0});
    ASSERT_EQ(total, 4 * (r + 1));
  }
}

TEST(ThreadPoolStress, ExceptionsUnderContentionAreRethrownOnce) {
  ThreadPool pool(4);
  for (int r = 0; r < 100; ++r) {
    EXPECT_THROW(
        pool.run_on_all([](int core) {
          if (core % 2 == 0) throw std::runtime_error("boom");
        }),
        std::runtime_error);
    // The pool must be reusable after a throwing region.
    std::atomic<int> ran{0};
    pool.run_on_all([&](int) { ++ran; });
    EXPECT_EQ(ran.load(), 4);
  }
}

TEST(ThreadPoolStress, ParallelForPartitionsWithoutOverlap) {
  ThreadPool pool(4);
  constexpr std::int64_t kTotal = 10'000;
  std::vector<std::atomic<std::uint8_t>> touched(kTotal);
  pool.parallel_for(kTotal, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      touched[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (std::int64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStress, PoolChurn) {
  // Construct/destroy pools rapidly, each doing a little work: exercises
  // the startup and shutdown handshakes where lost-wakeup bugs live.
  for (int r = 0; r < 50; ++r) {
    ThreadPool pool(1 + r % 4);
    std::atomic<int> ran{0};
    pool.run_on_all([&](int) { ++ran; });
    EXPECT_EQ(ran.load(), pool.workers());
  }
}

TEST(ThreadPoolStress, DestructionWithoutAnyRegion) {
  for (int r = 0; r < 50; ++r) {
    ThreadPool pool(4);
  }
}

}  // namespace
}  // namespace mcmm
