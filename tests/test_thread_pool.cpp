#include "gemm/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::mutex mu;
  std::set<int> ids;
  pool.run_on_all([&](int core) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(core);
  });
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_on_all([&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 600);
}

TEST(ThreadPool, SingleWorkerWorks) {
  ThreadPool pool(1);
  int value = 0;
  pool.run_on_all([&](int core) {
    EXPECT_EQ(core, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), Error); }

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_on_all([](int core) {
    if (core == 1) throw Error("boom");
  }),
               Error);
  // Pool must still be usable afterwards.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](int, std::int64_t lo, std::int64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PinWorkersToCpuZeroSucceedsOnLinux) {
  // CPU 0 always exists, so on Linux both workers pin to it; elsewhere the
  // call is a supported no-op returning 0.
  ThreadPool pool(2);
  EXPECT_EQ(pool.pinned_workers(), 0);
  const int pinned = pool.pin_workers({0});
#ifdef __linux__
  EXPECT_EQ(pinned, 2);
#else
  EXPECT_EQ(pinned, 0);
#endif
  EXPECT_EQ(pool.pinned_workers(), pinned);
  // Pinned pools must still execute work on every worker.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PinWorkersSkipsInvalidCpuIds) {
  ThreadPool pool(2);
  // Negative and absurdly large ids are skipped rather than fatal.
  const int pinned = pool.pin_workers({-1, 1 << 20});
  EXPECT_EQ(pinned, 0);
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PinWorkersWithEmptyListIsANoOp) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.pin_workers({}), 0);
}

TEST(ThreadPool, RunBatchExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(hits.size());
  for (auto& hit : hits) {
    tasks.push_back([&hit] { hit.fetch_add(1); });
  }
  pool.run_batch(tasks);
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, RunBatchStopsClaimingAfterAThrow) {
  // First-error drain stop: once a task throws, workers must stop claiming
  // new tasks instead of burning through the rest of the batch.  The
  // throwing task parks its siblings first so they cannot race ahead and
  // drain the batch before the abort flag is set.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::atomic<bool> boom_started{false};
  const int total = 10000;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<std::size_t>(total));
  tasks.push_back([&] {
    boom_started.store(true);
    throw Error("boom");
  });
  for (int i = 1; i < total; ++i) {
    tasks.push_back([&] {
      while (!boom_started.load()) std::this_thread::yield();
      executed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run_batch(tasks), Error);
  // At most the tasks claimed before the abort flag landed ran: far fewer
  // than the batch (each worker can have claimed only a handful).
  EXPECT_LT(executed.load(), total / 2);
}

TEST(ThreadPool, RunBatchWithEmptyBatchIsANoOp) {
  ThreadPool pool(2);
  pool.run_batch({});
}

TEST(ThreadPool, RunBatchThrowLeavesPoolUsable) {
  // Exception-ownership regression (the serve dispatcher contract): the
  // first worker throw is rethrown at the dispatch site and the pool keeps
  // serving batches and regions afterwards — one failed task must never
  // wedge or tear down the pool.
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks(2, [] {});
  tasks[0] = [] { throw Error("batch boom"); };
  EXPECT_THROW(pool.run_batch(tasks), Error);

  std::atomic<int> counter{0};
  std::vector<std::function<void()>> next(4, [&] { counter.fetch_add(1); });
  pool.run_batch(next);
  EXPECT_EQ(counter.load(), 4);
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 6);

  // Repeated failures keep the same contract (first_error_ is re-armed per
  // dispatch, not sticky).
  EXPECT_THROW(pool.run_batch(tasks), Error);
  pool.run_batch(next);
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, RunBatchPropagatesNonStdException) {
  // Workers capture with catch (...): a throw that is not derived from
  // std::exception must still reach the dispatch site with its type intact.
  struct NotAnException {};
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks(2, [] {});
  tasks[0] = [] { throw NotAnException{}; };
  EXPECT_THROW(pool.run_batch(tasks), NotAnException);

  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace mcmm
