#include "gemm/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::mutex mu;
  std::set<int> ids;
  pool.run_on_all([&](int core) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(core);
  });
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_on_all([&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 600);
}

TEST(ThreadPool, SingleWorkerWorks) {
  ThreadPool pool(1);
  int value = 0;
  pool.run_on_all([&](int core) {
    EXPECT_EQ(core, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), Error); }

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_on_all([](int core) {
    if (core == 1) throw Error("boom");
  }),
               Error);
  // Pool must still be usable afterwards.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](int, std::int64_t lo, std::int64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PinWorkersToCpuZeroSucceedsOnLinux) {
  // CPU 0 always exists, so on Linux both workers pin to it; elsewhere the
  // call is a supported no-op returning 0.
  ThreadPool pool(2);
  EXPECT_EQ(pool.pinned_workers(), 0);
  const int pinned = pool.pin_workers({0});
#ifdef __linux__
  EXPECT_EQ(pinned, 2);
#else
  EXPECT_EQ(pinned, 0);
#endif
  EXPECT_EQ(pool.pinned_workers(), pinned);
  // Pinned pools must still execute work on every worker.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PinWorkersSkipsInvalidCpuIds) {
  ThreadPool pool(2);
  // Negative and absurdly large ids are skipped rather than fatal.
  const int pinned = pool.pin_workers({-1, 1 << 20});
  EXPECT_EQ(pinned, 0);
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PinWorkersWithEmptyListIsANoOp) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.pin_workers({}), 0);
}

}  // namespace
}  // namespace mcmm
