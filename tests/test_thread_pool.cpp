#include "gemm/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace mcmm {
namespace {

TEST(ThreadPool, RunsJobOnEveryWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.workers(), 4);
  std::mutex mu;
  std::set<int> ids;
  pool.run_on_all([&](int core) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(core);
  });
  EXPECT_EQ(ids, (std::set<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_on_all([&](int) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 600);
}

TEST(ThreadPool, SingleWorkerWorks) {
  ThreadPool pool(1);
  int value = 0;
  pool.run_on_all([&](int core) {
    EXPECT_EQ(core, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), Error); }

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_on_all([](int core) {
    if (core == 1) throw Error("boom");
  }),
               Error);
  // Pool must still be usable afterwards.
  std::atomic<int> counter{0};
  pool.run_on_all([&](int) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRangeDisjointly) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](int, std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](int, std::int64_t lo, std::int64_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

}  // namespace
}  // namespace mcmm
