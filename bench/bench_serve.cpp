// bench_serve — open-loop load generator for the GEMM service.
//
// Two drive modes share one report:
//
//   in-process (default): owns a GemmServer and fans --tenants client
//   threads over it.  Submission is open-loop: each client issues its
//   next request on a fixed cadence (--rate products/sec per tenant,
//   0 = as fast as admission allows) WITHOUT waiting for the previous
//   completion, so the bounded ring's backpressure is actually exercised
//   — rejected submissions are counted, not retried.  Tickets are
//   drained at the end; per-request latency (queue + exec) feeds the
//   percentile summary.
//
//   --socket PATH: drives a running mcmm_serve daemon over its Unix
//   socket line protocol, one connection per tenant (closed-loop per
//   connection — socket concurrency comes from the tenant fan-out), then
//   pulls the daemon's mcmm-serve-v1 stats document and embeds it in the
//   report.  --shutdown asks the daemon to exit afterwards (the CI
//   serve-smoke job uses this).
//
// The report (--json) is `mcmm-serve-bench-v1`: offered/accepted/
// rejected/failed counts, wall time, products/sec, latency percentiles,
// plus the server's own stats document under "server".  Exit status is
// non-zero when any accepted request failed, so the bench doubles as the
// zero-failed-requests gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifdef __linux__
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "gemm/matrix.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using mcmm::Matrix;
using mcmm::serve::GemmRequest;
using mcmm::serve::GemmResponse;
using mcmm::serve::GemmServer;
using mcmm::serve::ScheduleKind;
using mcmm::serve::Submit;
using mcmm::serve::SubmitStatus;
using mcmm::serve::Ticket;

struct LoadResult {
  std::int64_t offered = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  double wall_ms = 0;
  std::vector<double> latency_ms;
  std::string server_stats;  ///< the service's own mcmm-serve-v1 line
};

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - static_cast<double>(lo));
}

/// One tenant's open-loop client: fixed-cadence submits, tickets drained
/// at the end.
struct TenantLoad {
  std::int64_t offered = 0;
  std::int64_t rejected = 0;
  std::int64_t failed = 0;
  std::vector<double> latency_ms;
};

LoadResult run_in_process(const GemmServer::Config& config,
                          std::int64_t requests, int tenants,
                          std::int64_t order, ScheduleKind schedule,
                          double rate) {
  GemmServer server(config);
  std::vector<TenantLoad> loads(static_cast<std::size_t>(tenants));
  std::vector<std::thread> clients;
  const double t0 = now_ms();
  for (int t = 0; t < tenants; ++t) {
    clients.emplace_back([&server, &loads, t, requests, tenants, order,
                          schedule, rate] {
      TenantLoad& load = loads[static_cast<std::size_t>(t)];
      const std::int64_t mine =
          requests / tenants + (t < requests % tenants ? 1 : 0);
      // Each in-flight request needs its own C (A and B are read-only and
      // shared); the window buffers below are recycled once their ticket
      // completes.
      Matrix a(order, order), b(order, order);
      a.fill_random(101 + static_cast<std::uint64_t>(t));
      b.fill_random(211 + static_cast<std::uint64_t>(t));
      struct Slot {
        std::unique_ptr<Matrix> c;
        std::shared_ptr<Ticket> ticket;
      };
      std::vector<Slot> window;
      const double interval_ms = rate > 0 ? 1e3 / rate : 0;
      const double start = now_ms();
      for (std::int64_t i = 0; i < mine; ++i) {
        if (interval_ms > 0) {
          const double due = start + static_cast<double>(i) * interval_ms;
          while (now_ms() < due) std::this_thread::yield();
        }
        // Recycle completed slots so the window stays bounded.
        for (Slot& slot : window) {
          if (slot.ticket != nullptr && slot.ticket->done()) {
            const GemmResponse& r = slot.ticket->wait();
            if (!r.ok) ++load.failed;
            load.latency_ms.push_back(r.queue_ms + r.exec_ms);
            slot.ticket = nullptr;
          }
        }
        Slot* free_slot = nullptr;
        for (Slot& slot : window) {
          if (slot.ticket == nullptr) {
            free_slot = &slot;
            break;
          }
        }
        if (free_slot == nullptr) {
          window.push_back(Slot{std::make_unique<Matrix>(order, order), {}});
          free_slot = &window.back();
        }
        free_slot->c->set_zero();
        GemmRequest req;
        req.tenant = t;
        req.a = &a;
        req.b = &b;
        req.c = free_slot->c.get();
        req.schedule = schedule;
        ++load.offered;
        Submit submitted = server.submit(req);
        if (submitted.status == SubmitStatus::kAccepted) {
          free_slot->ticket = std::move(submitted.ticket);
        } else {
          ++load.rejected;  // open-loop: backpressure is recorded, not retried
        }
      }
      for (Slot& slot : window) {
        if (slot.ticket == nullptr) continue;
        const GemmResponse& r = slot.ticket->wait();
        if (!r.ok) ++load.failed;
        load.latency_ms.push_back(r.queue_ms + r.exec_ms);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  LoadResult result;
  result.wall_ms = now_ms() - t0;
  server.shutdown();
  result.server_stats = server.stats_json();
  for (const TenantLoad& load : loads) {
    result.offered += load.offered;
    result.rejected += load.rejected;
    result.failed += load.failed;
    result.latency_ms.insert(result.latency_ms.end(), load.latency_ms.begin(),
                             load.latency_ms.end());
  }
  result.accepted = result.offered - result.rejected;
  return result;
}

#ifdef __linux__
/// Minimal line-oriented client for the daemon's Unix socket protocol.
class SocketClient {
 public:
  explicit SocketClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MCMM_REQUIRE(fd_ >= 0, "bench_serve: cannot create socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    MCMM_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "bench_serve: socket path too long");
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    MCMM_REQUIRE(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0,
                 "bench_serve: cannot connect to " + path);
  }
  ~SocketClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  std::string request(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t put = ::write(fd_, out.data() + off, out.size() - off);
      MCMM_REQUIRE(put > 0, "bench_serve: socket write failed");
      off += static_cast<std::size_t>(put);
    }
    std::size_t newline;
    while ((newline = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      MCMM_REQUIRE(got > 0, "bench_serve: socket closed mid-reply");
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
    std::string reply = buffer_.substr(0, newline);
    buffer_.erase(0, newline + 1);
    return reply;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

LoadResult run_socket(const std::string& path, std::int64_t requests,
                      int tenants, std::int64_t order, ScheduleKind schedule,
                      bool shutdown_after) {
  std::vector<TenantLoad> loads(static_cast<std::size_t>(tenants));
  std::vector<std::thread> clients;
  const double t0 = now_ms();
  for (int t = 0; t < tenants; ++t) {
    clients.emplace_back([&loads, &path, t, requests, tenants, order,
                          schedule] {
      TenantLoad& load = loads[static_cast<std::size_t>(t)];
      SocketClient client(path);
      const std::int64_t mine =
          requests / tenants + (t < requests % tenants ? 1 : 0);
      for (std::int64_t i = 0; i < mine; ++i) {
        char line[160];
        std::snprintf(line, sizeof(line), "gemm %d %lld %lld %lld %s %lld", t,
                      static_cast<long long>(order),
                      static_cast<long long>(order),
                      static_cast<long long>(order),
                      mcmm::serve::to_string(schedule),
                      static_cast<long long>(1000 * t + i));
        ++load.offered;
        const mcmm::JsonValue reply = mcmm::json_parse(client.request(line));
        const mcmm::JsonValue* ok = reply.find("ok");
        if (ok == nullptr || !ok->boolean) {
          ++load.failed;
          continue;
        }
        const mcmm::JsonValue* queue_ms = reply.find("queue_ms");
        const mcmm::JsonValue* exec_ms = reply.find("exec_ms");
        load.latency_ms.push_back(
            (queue_ms != nullptr ? queue_ms->number : 0) +
            (exec_ms != nullptr ? exec_ms->number : 0));
      }
    });
  }
  for (std::thread& c : clients) c.join();
  LoadResult result;
  result.wall_ms = now_ms() - t0;
  {
    SocketClient control(path);
    result.server_stats = control.request("stats");
    if (shutdown_after) control.request("shutdown");
  }
  for (const TenantLoad& load : loads) {
    result.offered += load.offered;
    result.rejected += load.rejected;
    result.failed += load.failed;
    result.latency_ms.insert(result.latency_ms.end(), load.latency_ms.begin(),
                             load.latency_ms.end());
  }
  result.accepted = result.offered - result.rejected;
  return result;
}
#endif  // __linux__

std::string report_json(const LoadResult& result, const std::string& mode,
                        std::int64_t requests, int tenants,
                        std::int64_t order) {
  std::vector<double> sorted = result.latency_ms;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double v : sorted) sum += v;
  const double wall_s = result.wall_ms / 1e3;
  const std::int64_t completed =
      static_cast<std::int64_t>(sorted.size()) - result.failed;

  mcmm::JsonWriter w;
  w.begin_object();
  w.kv("schema", "mcmm-serve-bench-v1");
  w.kv("mode", mode);
  w.kv("requests", requests);
  w.kv("tenants", tenants);
  w.kv("order", order);
  w.kv("offered", result.offered);
  w.kv("accepted", result.accepted);
  w.kv("rejected", result.rejected);
  w.kv("completed", completed);
  w.kv("failed", result.failed);
  w.kv("wall_ms", result.wall_ms);
  w.kv("products_per_sec",
       wall_s > 0 ? static_cast<double>(completed) / wall_s : 0.0);
  w.key("latency_ms").begin_object();
  w.kv("count", static_cast<std::int64_t>(sorted.size()));
  w.kv("mean",
       sorted.empty() ? 0.0 : sum / static_cast<double>(sorted.size()));
  w.kv("min", sorted.empty() ? 0.0 : sorted.front());
  w.kv("max", sorted.empty() ? 0.0 : sorted.back());
  w.kv("p50", percentile(sorted, 0.50));
  w.kv("p95", percentile(sorted, 0.95));
  w.kv("p99", percentile(sorted, 0.99));
  w.end_object();
  if (!result.server_stats.empty()) {
    w.key("server").raw_value(result.server_stats);
  }
  w.end_object();
  return w.str();
}

}  // namespace

int main(int argc, char** argv) {
  mcmm::CliParser cli;
  cli.add_option("requests", "total products to offer", "64");
  cli.add_option("tenants", "concurrent client threads / tenant ids", "2");
  cli.add_option("order", "square matrix order per product", "192");
  cli.add_option("rate",
                 "open-loop offered rate per tenant, products/sec (0 = max)",
                 "0");
  cli.add_option("schedule", "auto|shared-opt|distributed-opt|tradeoff",
                 "auto");
  cli.add_option("workers", "in-process server pool workers", "2");
  cli.add_option("queue", "in-process request ring capacity", "64");
  cli.add_option("q", "in-process block side", "64");
  cli.add_option("kernel", "in-process kernel path: auto|scalar|simd",
                 "auto");
  cli.add_option("socket", "drive a running mcmm_serve on this socket", "");
  cli.add_flag("shutdown", "ask the daemon to exit after the run (--socket)");
  cli.add_option("json", "write the mcmm-serve-bench-v1 report here", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::int64_t requests = cli.integer("requests");
    const int tenants = static_cast<int>(cli.integer("tenants"));
    const std::int64_t order = cli.integer("order");
    const ScheduleKind schedule =
        mcmm::serve::parse_schedule_kind(cli.str("schedule"));
    MCMM_REQUIRE(requests >= 1 && tenants >= 1 && order >= 1,
                 "bench_serve: requests, tenants and order must be >= 1");

    LoadResult result;
    std::string mode;
    if (!cli.str("socket").empty()) {
#ifdef __linux__
      mode = "socket";
      result = run_socket(cli.str("socket"), requests, tenants, order,
                          schedule, cli.flag("shutdown"));
#else
      std::fprintf(stderr, "bench_serve: --socket requires Linux\n");
      return 2;
#endif
    } else {
      mode = "in-process";
      GemmServer::Config config;
      config.workers = static_cast<int>(cli.integer("workers"));
      config.queue_capacity = static_cast<std::size_t>(cli.integer("queue"));
      config.max_tenants = std::max(tenants, 2);
      config.q = cli.integer("q");
      config.kernel = mcmm::parse_kernel_path(cli.str("kernel"));
      result = run_in_process(config, requests, tenants, order, schedule,
                              cli.real("rate"));
    }

    const std::string report =
        report_json(result, mode, requests, tenants, order);
    std::printf("%s\n", report.c_str());
    if (!cli.str("json").empty()) {
      std::FILE* f = std::fopen(cli.str("json").c_str(), "w");
      MCMM_REQUIRE(f != nullptr,
                   "bench_serve: cannot write " + cli.str("json"));
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
    }
    std::fprintf(stderr,
                 "bench_serve: %lld offered, %lld accepted, %lld rejected, "
                 "%lld failed, %.1f ms\n",
                 static_cast<long long>(result.offered),
                 static_cast<long long>(result.accepted),
                 static_cast<long long>(result.rejected),
                 static_cast<long long>(result.failed), result.wall_ms);
    return result.failed == 0 ? 0 : 1;
  } catch (const mcmm::Error& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 2;
  }
}
