// bench_batch — throughput bench for the batched small-shape GEMM engine
// (src/batch), emitting the `mcmm-batch-v1` report.
//
// Three measured phases over one generated batch of independent products:
//
//   serial    — gemm_batch_serial: the same buckets executed one product
//               at a time on one worker (the baseline AND the bit-identity
//               oracle: the parallel engine must reproduce it exactly).
//   parallel  — gemm_batch on the pinned ThreadPool, products claimed
//               from the per-bucket atomic cursor (open loop: the whole
//               batch is in flight at once; nothing waits on anything).
//   pack amortisation — the same batch with a shared B versus per-product
//               B operands, both traced, comparing the pack-B share of
//               total attributed time.  A shared-B batch packs B once per
//               batch instead of once per product, so its share must drop.
//
// The report carries products/sec for both engines, the speedup, the
// per-bucket breakdown, and the pack-amortisation ratio.  Exit status:
// non-zero when the parallel results are not bit-identical to the serial
// ones, or when --min-speedup > 0 and the measured speedup falls short
// (CI multi-core runners gate on >= 3; the default 0 is report-only so
// single-core hosts still produce a valid report).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "batch/gemm_batch.hpp"
#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using mcmm::ExecutionTracer;
using mcmm::JsonWriter;
using mcmm::KernelContext;
using mcmm::Matrix;
using mcmm::PhaseTotals;
using mcmm::ThreadPool;
using mcmm::TracePhase;
using mcmm::TraceSummary;
using mcmm::batch::BatchPolicy;
using mcmm::batch::BatchProduct;
using mcmm::batch::BatchResult;
using mcmm::batch::BucketStats;

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

/// One generated batch: the matrices live here, products point into them.
struct Workload {
  std::vector<std::unique_ptr<Matrix>> storage;
  std::vector<BatchProduct> products;

  Matrix* add(std::int64_t r, std::int64_t c, std::uint64_t seed) {
    storage.push_back(std::make_unique<Matrix>(r, c));
    if (seed != 0) storage.back()->fill_random(seed);
    return storage.back().get();
  }

  void reset_c() {
    for (BatchProduct& p : products) {
      for (std::int64_t i = 0; i < p.c->rows(); ++i) {
        double* row = p.c->row_ptr(i);
        for (std::int64_t j = 0; j < p.c->cols(); ++j) row[j] = 0;
      }
    }
  }
};

/// `shared_b`: every product consumes ONE B operand (the amortisation
/// case); otherwise each product owns its B.
Workload make_workload(std::int64_t products, std::int64_t m, std::int64_t n,
                       std::int64_t k, bool shared_b) {
  Workload w;
  Matrix* shared = shared_b ? w.add(k, n, 7777) : nullptr;
  for (std::int64_t i = 0; i < products; ++i) {
    const auto seed = static_cast<std::uint64_t>(2 * i + 1);
    Matrix* a = w.add(m, k, seed);
    Matrix* b = shared_b ? shared : w.add(k, n, seed + 1);
    w.products.push_back(BatchProduct{w.add(m, n, 0), a, b});
  }
  return w;
}

double products_per_sec(std::int64_t products, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(products) / (wall_ms / 1e3) : 0.0;
}

struct TracedRun {
  BatchResult result;
  double pack_b_ms = 0;
  double attributed_ms = 0;  ///< pack-A + pack-B + micro-kernel
};

/// Run the batch on the pool with the tracer attached and distil the
/// phase mix across every region (per-bucket pack + exec).
TracedRun traced_parallel_run(Workload& w, ThreadPool& pool,
                              KernelContext& ctx, ExecutionTracer& tracer,
                              const BatchPolicy& policy) {
  w.reset_c();
  tracer.reset();
  TracedRun run;
  run.result = gemm_batch(w.products, pool, ctx, policy);
  const TraceSummary summary = summarize_trace(tracer);
  const PhaseTotals totals = aggregate_region_totals(summary);
  run.pack_b_ms = totals.ms(TracePhase::kPackB);
  run.attributed_ms = totals.ms(TracePhase::kPackA) + run.pack_b_ms +
                      totals.ms(TracePhase::kMicroKernel);
  return run;
}

void emit_buckets(JsonWriter& w, const std::vector<BucketStats>& buckets) {
  w.key("buckets").begin_array();
  for (const BucketStats& bucket : buckets) {
    w.begin_object();
    w.kv("m", bucket.shape.m);
    w.kv("n", bucket.shape.n);
    w.kv("k", bucket.shape.k);
    w.kv("strategy", mcmm::batch::to_string(bucket.strategy));
    w.kv("shared_b", bucket.shared_b);
    w.kv("products", bucket.products);
    w.kv("wall_ms", bucket.wall_ms);
    w.kv("products_per_sec",
         products_per_sec(bucket.products, bucket.wall_ms));
    w.end_object();
  }
  w.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  mcmm::CliParser cli;
  cli.add_option("products", "independent products in the batch", "1024");
  cli.add_option("m", "rows of each C", "64");
  cli.add_option("n", "cols of each C", "64");
  cli.add_option("k", "inner dimension", "64");
  cli.add_option("q", "block side for the packed path", "64");
  cli.add_option("workers", "pool workers (0 = hardware concurrency)", "0");
  cli.add_option("kernel", "kernel path: auto|scalar|simd", "auto");
  cli.add_option("repeat", "timed repetitions; best wall time wins", "3");
  cli.add_option("min-speedup",
                 "fail unless parallel/serial products/sec >= this "
                 "(0 = report-only)",
                 "0");
  cli.add_option("json", "write the mcmm-batch-v1 report here", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::int64_t products = cli.integer("products");
    const std::int64_t m = cli.integer("m");
    const std::int64_t n = cli.integer("n");
    const std::int64_t k = cli.integer("k");
    const std::int64_t repeat = cli.integer("repeat");
    MCMM_REQUIRE(products >= 1 && m >= 1 && n >= 1 && k >= 1 && repeat >= 1,
                 "bench_batch: products, m, n, k and repeat must be >= 1");
    int workers = static_cast<int>(cli.integer("workers"));
    if (workers == 0) {
      workers = std::max(1u, std::thread::hardware_concurrency());
    }
    MCMM_REQUIRE(workers >= 1, "bench_batch: workers must be >= 0");
    const mcmm::KernelPath path = mcmm::parse_kernel_path(cli.str("kernel"));
    BatchPolicy policy;
    policy.q = cli.integer("q");

    ThreadPool pool(workers);
    KernelContext ctx(workers, path);
    ExecutionTracer tracer(workers);
    pool.set_tracer(&tracer);
    ctx.set_tracer(&tracer);

    Workload w = make_workload(products, m, n, k, /*shared_b=*/false);

    // Serial baseline (and oracle): keep the final C for the identity
    // check.  Best-of-N wall time for both engines.
    KernelContext serial_ctx(1, path);
    double serial_ms = 0;
    BatchResult serial;
    for (std::int64_t r = 0; r < repeat; ++r) {
      w.reset_c();
      const double t0 = now_ms();
      serial = gemm_batch_serial(w.products, serial_ctx, policy);
      const double wall = now_ms() - t0;
      if (r == 0 || wall < serial_ms) serial_ms = wall;
    }
    std::vector<Matrix> oracle;
    for (const BatchProduct& p : w.products) oracle.push_back(*p.c);

    double parallel_ms = 0;
    TracedRun parallel;
    for (std::int64_t r = 0; r < repeat; ++r) {
      const double t0 = now_ms();
      parallel = traced_parallel_run(w, pool, ctx, tracer, policy);
      const double wall = now_ms() - t0;
      if (r == 0 || wall < parallel_ms) parallel_ms = wall;
    }

    // Bit-identity: the parallel engine must reproduce the serial result
    // exactly, for every product.
    std::int64_t mismatched = 0;
    for (std::size_t i = 0; i < w.products.size(); ++i) {
      if (Matrix::max_abs_diff(*w.products[i].c, oracle[i]) != 0.0) {
        ++mismatched;
      }
    }

    const double serial_pps = products_per_sec(products, serial_ms);
    const double parallel_pps = products_per_sec(products, parallel_ms);
    const double speedup = serial_pps > 0 ? parallel_pps / serial_pps : 0.0;

    // Pack amortisation: same shape and count, shared vs per-product B.
    Workload shared_w = make_workload(products, m, n, k, /*shared_b=*/true);
    const TracedRun unshared_run =
        traced_parallel_run(w, pool, ctx, tracer, policy);
    const TracedRun shared_run =
        traced_parallel_run(shared_w, pool, ctx, tracer, policy);
    const double unshared_share =
        unshared_run.attributed_ms > 0
            ? unshared_run.pack_b_ms / unshared_run.attributed_ms
            : 0.0;
    const double shared_share =
        shared_run.attributed_ms > 0
            ? shared_run.pack_b_ms / shared_run.attributed_ms
            : 0.0;
    const double amortisation_ratio =
        shared_share > 0 ? unshared_share / shared_share : 0.0;

    JsonWriter out;
    out.begin_object();
    out.kv("schema", "mcmm-batch-v1");
    out.kv("workers", workers);
    out.kv("kernel", ctx.dispatch_name());
    out.kv("q", policy.q);
    out.kv("products", products);
    out.key("shape").begin_object();
    out.kv("m", m);
    out.kv("n", n);
    out.kv("k", k);
    out.end_object();
    out.key("serial").begin_object();
    out.kv("wall_ms", serial_ms);
    out.kv("products_per_sec", serial_pps);
    out.end_object();
    out.key("parallel").begin_object();
    out.kv("wall_ms", parallel_ms);
    out.kv("products_per_sec", parallel_pps);
    emit_buckets(out, parallel.result.buckets);
    out.end_object();
    out.kv("speedup", speedup);
    out.kv("bit_identical", mismatched == 0);
    out.key("pack_amortisation").begin_object();
    out.key("unshared").begin_object();
    out.kv("pack_b_ms", unshared_run.pack_b_ms);
    out.kv("attributed_ms", unshared_run.attributed_ms);
    out.kv("pack_b_share", unshared_share);
    out.end_object();
    out.key("shared").begin_object();
    out.kv("pack_b_ms", shared_run.pack_b_ms);
    out.kv("attributed_ms", shared_run.attributed_ms);
    out.kv("pack_b_share", shared_share);
    out.end_object();
    out.kv("ratio", amortisation_ratio);
    out.end_object();
    out.end_object();

    const std::string report = out.str();
    std::printf("%s\n", report.c_str());
    if (!cli.str("json").empty()) {
      std::FILE* f = std::fopen(cli.str("json").c_str(), "w");
      MCMM_REQUIRE(f != nullptr,
                   "bench_batch: cannot write " + cli.str("json"));
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
    }

    if (mismatched > 0) {
      std::fprintf(stderr,
                   "bench_batch: %lld products NOT bit-identical to the "
                   "serial reference\n",
                   static_cast<long long>(mismatched));
      return 1;
    }
    const double min_speedup = cli.real("min-speedup");
    if (min_speedup > 0 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "bench_batch: speedup %.2f below required %.2f\n", speedup,
                   min_speedup);
      return 1;
    }
    return 0;
  } catch (const mcmm::Error& e) {
    std::fprintf(stderr, "bench_batch: %s\n", e.what());
    return 2;
  }
}
