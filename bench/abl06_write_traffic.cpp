// Ablation: the paper's Tdata counts only loads — what happens when the
// write-back traffic each bus also carries is included?
//
// The distributed-level difference is structural: Shared Opt. writes its
// C element back to the shared cache after EVERY block FMA (~mnz
// write-backs), while Distributed Opt. keeps each C sub-block private
// until fully computed (~mn).  Including writes therefore penalises
// Shared Opt. specifically at the sigma_D level, moving the
// Tradeoff/Shared Opt. crossover — the table shows both Tdata variants
// side by side under the IDEAL setting.
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Ablation 6",
                                   /*default_max=*/128, /*paper_max=*/384,
                                   /*default_step=*/32, &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  // Both Tdata variants of one algorithm read the same IDEAL simulation;
  // the sweep engine's memo cache runs it once.
  bench::BenchDriver driver("abl06", opt);
  SeriesTable& table = driver.table(
      "Ablation: loads-only vs write-inclusive Tdata, IDEAL, CS=977 CD=21",
      "order");
  std::vector<std::size_t> plain_cols, write_cols;
  const std::vector<std::string> algs = {"shared-opt", "distributed-opt",
                                         "tradeoff"};
  for (const auto& a : algs) {
    plain_cols.push_back(table.add_series(a + ".loads-only"));
    write_cols.push_back(table.add_series(a + ".with-writes"));
  }

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const auto x = static_cast<double>(order);
    for (std::size_t i = 0; i < algs.size(); ++i) {
      driver.cell(plain_cols[i], x, algs[i], order, cfg, Setting::kIdeal,
                  Metric::kTdata);
      driver.cell(write_cols[i], x, algs[i], order, cfg, Setting::kIdeal,
                  Metric::kTdataWithWritebacks);
    }
  }
  driver.finish();
  return 0;
}
