// Figure 10 (a-d): Tdata for all six algorithms, CS = 245 (q = 64),
// CD in {6, 4}, under the LRU-50 and IDEAL settings.
//
// Expected shape: with mu = 1, Tradeoff only wins under the pessimistic
// cache split; Shared Opt. ties or takes the lead.
#include "bench_common.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 10",
                                   /*default_max=*/160, /*paper_max=*/1100,
                                   /*default_step=*/32, &opt)) {
    return 0;
  }
  bench::run_tdata_figure("Figure 10", 245, {6, 4}, opt);
  return 0;
}
