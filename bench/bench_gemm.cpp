// Timing benchmarks for the real-execution substrate: the sequential
// kernels and the four multithreaded schedules on actual data (the paper's
// future-work experiment, run on the host CPU).
#include <benchmark/benchmark.h>

#include "gemm/kernel.hpp"
#include "gemm/parallel_gemm.hpp"

namespace {

using namespace mcmm;

Tiling host_tiling() { return tiling_for_host(4, 8 << 20, 256 << 10, 64); }

void BM_GemmReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_reference(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_blocked(c, a, b, 64);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_GemmBlockedPacked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_blocked_packed(c, a, b, 64);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedPacked)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

template <typename Fn>
void run_parallel(benchmark::State& state, Fn fn) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  ThreadPool pool(4);
  const Tiling t = host_tiling();
  for (auto _ : state) {
    c.set_zero();
    fn(c, a, b, t, pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_ParallelSharedOpt(benchmark::State& state) {
  run_parallel(state, &parallel_gemm_shared_opt);
}
BENCHMARK(BM_ParallelSharedOpt)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ParallelDistributedOpt(benchmark::State& state) {
  run_parallel(state, &parallel_gemm_distributed_opt);
}
BENCHMARK(BM_ParallelDistributedOpt)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ParallelTradeoff(benchmark::State& state) {
  run_parallel(state, &parallel_gemm_tradeoff);
}
BENCHMARK(BM_ParallelTradeoff)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_ParallelOuterProduct(benchmark::State& state) {
  run_parallel(state, &parallel_gemm_outer_product);
}
BENCHMARK(BM_ParallelOuterProduct)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
