// Timing benchmarks for the real-execution substrate: the sequential
// kernels and the four multithreaded schedules on actual data (the paper's
// future-work experiment, run on the host CPU).
//
// Tiling and worker count come from the host instead of hard-coded
// "typical" sizes: by default the detected cache topology (src/hw), or a
// calibrated mcmm-machine-v1 profile via `--machine FILE`
// (tools/mcmm_calibrate), so the timed schedules run with the same
// parameters the simulator predicts for this machine.  `--threads N`
// overrides the worker count, `--kernel auto|scalar|simd` forces the
// micro-kernel dispatch, and `--pin` pins schedule workers to distinct L2
// domains (docs/kernels.md).  `--repeats N` re-runs every benchmark N
// times and reports median/mean/stddev aggregates next to each other;
// `--min-time SEC` lengthens each timed run (both are sugar over the
// corresponding --benchmark_* flags, docs/benchmarking.md).  All of these
// are stripped before google-benchmark sees the command line; all
// --benchmark_* flags still work.  Falls back to the paper's quad-core
// constants (4 cores, 8 MB shared, 256 KB private, q=64) when detection
// finds nothing.
//
// When the --machine profile carries a "kernel_tuning" section
// (tools/mcmm_tune) and --kernel is left at auto, every KernelContext
// here is built from it, so the timed schedules use the tuned kernel,
// prefetch distances, and streaming policy.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "gemm/kernel.hpp"
#include "gemm/parallel_gemm.hpp"
#include "hw/affinity.hpp"
#include "hw/machine_profile.hpp"
#include "hw/topology.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace {

using namespace mcmm;

/// Host parameters resolved once in main(), before any benchmark runs.
struct HostSetup {
  Tiling tiling = tiling_for_host(4, 8 << 20, 256 << 10, 64);
  int threads = 4;
  KernelPath kernel_path = KernelPath::kAuto;
  /// Tuned kernel/knobs from the --machine profile; consulted only while
  /// --kernel stays at auto (an explicit path wins over the profile).
  KernelTuning kernel_tuning;
  bool pin = false;
  /// --repeats N / --min-time SEC, forwarded to google-benchmark as
  /// --benchmark_repetitions / --benchmark_min_time (0 = leave default).
  int repeats = 0;
  double min_time = 0.0;
  std::string source = "defaults (4 cores, 8 MB shared, 256 KB private)";
  /// --trace FILE / --trace-summary: one tracer shared by every benchmark
  /// (created in main() once the thread count is known; null = tracing off).
  std::string trace_path;
  bool trace_summary = false;
  std::unique_ptr<ExecutionTracer> tracer;
};

HostSetup& host_setup() {
  static HostSetup setup;
  return setup;
}

Tiling host_tiling() { return host_setup().tiling; }

/// Every benchmark builds its KernelContext here so the tuned profile
/// (when present) reaches the micro-kernel engine and all four schedules.
KernelContext make_kernel_context(int workers) {
  const HostSetup& setup = host_setup();
  if (setup.kernel_path == KernelPath::kAuto && setup.kernel_tuning.tuned) {
    return KernelContext(workers, setup.kernel_tuning);
  }
  return KernelContext(workers, setup.kernel_path);
}

void BM_GemmReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_reference(c, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_blocked(c, a, b, 64);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_GemmBlockedPacked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  for (auto _ : state) {
    c.set_zero();
    gemm_blocked_packed(c, a, b, 64);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedPacked)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// The packed micro-kernel engine (KernelContext::block_op over the blocked
/// loop nest).  This is the single-threaded speedup the CI kernel-parity
/// job asserts: micro vs block_fma-based BM_GemmBlocked at the same order.
void BM_GemmMicroKernel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  KernelContext ctx = make_kernel_context(1);
  // Spans land outside any region (worker 0 only) — they show up in the
  // summary totals but not in per-region attribution.
  ctx.set_tracer(host_setup().tracer.get());
  for (auto _ : state) {
    c.set_zero();
    gemm_micro(c, a, b, 64, ctx);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(ctx.dispatch_name());
}
BENCHMARK(BM_GemmMicroKernel)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

template <typename Fn>
void run_parallel(benchmark::State& state, Fn fn) {
  const std::int64_t n = state.range(0);
  Matrix a(n, n), b(n, n), c(n, n);
  a.fill_random(1);
  b.fill_random(2);
  const HostSetup& setup = host_setup();
  ThreadPool pool(setup.threads);
  if (setup.pin) pin_pool_to_host(pool, detect_host_topology());
  KernelContext ctx = make_kernel_context(pool.workers());
  pool.set_tracer(setup.tracer.get());
  ctx.set_tracer(setup.tracer.get());
  const Tiling t = host_tiling();
  for (auto _ : state) {
    c.set_zero();
    fn(c, a, b, t, pool, ctx);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.SetLabel(ctx.dispatch_name());
}

void BM_ParallelSharedOpt(benchmark::State& state) {
  run_parallel(state, [](Matrix& c, const Matrix& a, const Matrix& b,
                         const Tiling& t, ThreadPool& pool,
                         KernelContext& ctx) {
    parallel_gemm_shared_opt(c, a, b, t, pool, ctx);
  });
}
BENCHMARK(BM_ParallelSharedOpt)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelDistributedOpt(benchmark::State& state) {
  run_parallel(state, [](Matrix& c, const Matrix& a, const Matrix& b,
                         const Tiling& t, ThreadPool& pool,
                         KernelContext& ctx) {
    parallel_gemm_distributed_opt(c, a, b, t, pool, ctx);
  });
}
BENCHMARK(BM_ParallelDistributedOpt)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelTradeoff(benchmark::State& state) {
  run_parallel(state, [](Matrix& c, const Matrix& a, const Matrix& b,
                         const Tiling& t, ThreadPool& pool,
                         KernelContext& ctx) {
    parallel_gemm_tradeoff(c, a, b, t, pool, ctx);
  });
}
BENCHMARK(BM_ParallelTradeoff)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelOuterProduct(benchmark::State& state) {
  run_parallel(state, [](Matrix& c, const Matrix& a, const Matrix& b,
                         const Tiling& t, ThreadPool& pool,
                         KernelContext& ctx) {
    parallel_gemm_outer_product(c, a, b, t, pool, ctx);
  });
}
BENCHMARK(BM_ParallelOuterProduct)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

/// Pull --machine FILE / --machine=FILE, --threads N, --kernel PATH, and
/// --pin out of argv (they are ours, not google-benchmark's) and resolve
/// the host setup.
void resolve_host_setup(int* argc, char** argv) {
  HostSetup& setup = host_setup();
  std::string machine_path;
  bool threads_overridden = false;
  std::vector<char*> kept;
  kept.reserve(static_cast<std::size_t>(*argc));
  for (int i = 0; i < *argc; ++i) {
    const std::string arg = argv[i];
    auto take_value = [&](const std::string& flag, std::string* out) {
      if (arg == flag) {
        MCMM_REQUIRE(i + 1 < *argc, flag + " needs a value");
        *out = argv[++i];
        return true;
      }
      if (arg.rfind(flag + "=", 0) == 0) {
        *out = arg.substr(flag.size() + 1);
        return true;
      }
      return false;
    };
    std::string value;
    if (take_value("--machine", &value)) {
      machine_path = value;
    } else if (take_value("--threads", &value)) {
      setup.threads = static_cast<int>(std::stoll(value));
      MCMM_REQUIRE(setup.threads >= 1, "--threads must be >= 1");
      threads_overridden = true;
    } else if (take_value("--kernel", &value)) {
      setup.kernel_path = parse_kernel_path(value);
    } else if (arg == "--pin") {
      setup.pin = true;
    } else if (take_value("--repeats", &value)) {
      setup.repeats = static_cast<int>(std::stoll(value));
      MCMM_REQUIRE(setup.repeats >= 1, "--repeats must be >= 1");
    } else if (take_value("--min-time", &value)) {
      setup.min_time = std::stod(value);
      MCMM_REQUIRE(setup.min_time > 0.0, "--min-time must be > 0");
    } else if (take_value("--trace", &value)) {
      setup.trace_path = value;
    } else if (arg == "--trace-summary") {
      setup.trace_summary = true;
    } else {
      kept.push_back(argv[i]);
    }
  }
  *argc = static_cast<int>(kept.size());
  for (std::size_t i = 0; i < kept.size(); ++i) argv[i] = kept[i];

  if (!machine_path.empty()) {
    const MachineProfile profile = load_machine_profile(machine_path);
    setup.tiling = profile.tiling();
    setup.kernel_tuning = profile.kernel_tuning;
    if (!threads_overridden) setup.threads = profile.machine_config().p;
    setup.source = "profile " + machine_path;
    return;
  }
  const HostTopology topo = detect_host_topology();
  if (topo.detected()) {
    const int share = topo.l2_shared_by >= 1 ? topo.l2_shared_by : 1;
    const int p = std::max(topo.logical_cpus / share, 1);
    setup.tiling = tiling_for_host(p, topo.shared_cache_bytes(),
                                   topo.private_cache_bytes(), 64);
    if (!threads_overridden) setup.threads = p;
    setup.source = "sysfs topology (" + topo.describe() + ")";
  }
}

}  // namespace

int main(int argc, char** argv) {
  resolve_host_setup(&argc, argv);
  HostSetup& setup = host_setup();
  if (!setup.trace_path.empty() || setup.trace_summary) {
    setup.tracer = std::make_unique<ExecutionTracer>(setup.threads);
  }
  // Re-spell --repeats/--min-time as google-benchmark flags.  With
  // repetitions the reporter emits mean/median/stddev/cv rows next to the
  // per-repetition times, which is the median-of-N readout the CI gate
  // parses.  Storage must outlive Initialize(), which keeps pointers.
  std::vector<std::string> injected_storage;
  std::vector<char*> args(argv, argv + argc);
  if (setup.repeats >= 1) {
    injected_storage.push_back("--benchmark_repetitions=" +
                               std::to_string(setup.repeats));
  }
  if (setup.min_time > 0.0) {
    injected_storage.push_back("--benchmark_min_time=" +
                               std::to_string(setup.min_time));
  }
  for (std::string& s : injected_storage) {
    args.insert(args.begin() + 1, s.data());
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  const KernelContext probe = make_kernel_context(1);
  std::printf("host setup: %s\n", setup.source.c_str());
  std::printf("  threads=%d q=%lld lambda=%lld mu=%lld alpha=%lld beta=%lld\n",
              setup.threads, static_cast<long long>(setup.tiling.q),
              static_cast<long long>(setup.tiling.lambda),
              static_cast<long long>(setup.tiling.mu),
              static_cast<long long>(setup.tiling.alpha),
              static_cast<long long>(setup.tiling.beta));
  std::printf("  kernel=%s pin=%s\n", probe.dispatch_name().c_str(),
              setup.pin ? "on" : "off");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (setup.tracer != nullptr) {
    if (!setup.trace_path.empty()) {
      write_chrome_trace(*setup.tracer, setup.trace_path);
      std::fprintf(stderr, "trace written to %s\n", setup.trace_path.c_str());
    }
    if (setup.trace_summary) print_trace_summary(summarize_trace(*setup.tracer));
  }
  return 0;
}
