// Figure 6: impact of the LRU policy on the data access time Tdata of
// Tradeoff (CS = 977, CD = 21).  Same four series as Figures 4-5, for the
// combined metric.
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 6", /*default_max=*/240,
                                   /*paper_max=*/600, /*default_step=*/40,
                                   &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  bench::BenchDriver driver("fig06", opt);
  SeriesTable& table = driver.table(
      "Figure 6: Tdata of Tradeoff under LRU vs formula, CS=977 CD=21",
      "order");
  const auto s_2c = table.add_series("LRU(2C)");
  const auto s_c = table.add_series("LRU(C)");
  const auto s_formula = table.add_series("Formula");
  const auto s_formula2 = table.add_series("2xFormula");

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const Problem prob = Problem::square(order);
    const auto x = static_cast<double>(order);
    driver.cell(s_2c, x, "tradeoff", order, cfg, Setting::kLruDouble,
                Metric::kTdata);
    driver.cell(s_c, x, "tradeoff", order, cfg, Setting::kLruFull,
                Metric::kTdata);
    const double formula = predict_tradeoff(prob, cfg.p, tradeoff_params(cfg))
                               .tdata(cfg.sigma_s, cfg.sigma_d);
    table.set(s_formula, x, formula);
    table.set(s_formula2, x, 2 * formula);
  }
  driver.finish();
  return 0;
}
