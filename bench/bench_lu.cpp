// bench_lu — wall-clock bench for the kernel-routed LU factorization
// (src/lu/parallel_lu.hpp), emitting the `mcmm-lu-v1` report.
//
// Two measured phases over the same diagonally dominant matrix:
//
//   baseline — the loop-based parallel_lu_factor overload: naive
//              per-coefficient panel solves and trailing updates on the
//              same pool (the measurable "before" of routing the O(n^3)
//              work through the packed kernel engine).
//   routed   — the KernelContext overload: trailing updates as packed
//              rank-kb downdates, the U strip packed once per step,
//              blocked panel solves.  Traced, so the report can prove the
//              engine actually ran (pack/micro-kernel spans > 0).
//
// Both factorizations are validated against the matrix they factor via
// the L*U reconstruction residual.  Exit status: non-zero when either
// residual is out of tolerance, when the routed path recorded no
// micro-kernel spans, or when --min-speedup > 0 and routed/baseline falls
// short (CI multi-core runners gate on >= 2 at order 1024; the default 0
// is report-only so single-core hosts still produce a valid report).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "gemm/kernel.hpp"
#include "gemm/matrix.hpp"
#include "gemm/thread_pool.hpp"
#include "hw/affinity.hpp"
#include "hw/machine_profile.hpp"
#include "hw/topology.hpp"
#include "lu/lu_kernel.hpp"
#include "lu/parallel_lu.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using mcmm::ExecutionTracer;
using mcmm::JsonWriter;
using mcmm::KernelContext;
using mcmm::Matrix;
using mcmm::PhaseTotals;
using mcmm::ThreadPool;
using mcmm::TracePhase;
using mcmm::TraceSummary;

double now_ms() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1e3;
}

/// LU costs 2n^3/3 flops (to leading order).
double gflops(std::int64_t n, double wall_ms) {
  if (wall_ms <= 0) return 0.0;
  const double flops = 2.0 / 3.0 * static_cast<double>(n) *
                       static_cast<double>(n) * static_cast<double>(n);
  return flops / (wall_ms * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  mcmm::CliParser cli;
  cli.add_option("order", "matrix order n", "1024");
  cli.add_option("q", "tile side in coefficients", "64");
  cli.add_option("workers", "pool workers (0 = hardware concurrency)", "0");
  cli.add_option("kernel", "kernel path: auto|scalar|simd", "auto");
  cli.add_option("machine", "mcmm-machine-v1 profile (q/tuning/topology)", "");
  cli.add_flag("pin", "pin workers across private-cache domains");
  cli.add_flag("trace", "print the routed run's trace summary table");
  cli.add_option("seed", "matrix generator seed", "42");
  cli.add_option("repeat", "timed repetitions; best wall time wins", "3");
  cli.add_option("min-speedup",
                 "fail unless routed/baseline speedup >= this "
                 "(0 = report-only)",
                 "0");
  cli.add_option("json", "write the mcmm-lu-v1 report here", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::int64_t order = cli.integer("order");
    const std::int64_t repeat = cli.integer("repeat");
    MCMM_REQUIRE(order >= 1 && repeat >= 1,
                 "bench_lu: order and repeat must be >= 1");
    std::int64_t q = cli.integer("q");
    int workers = static_cast<int>(cli.integer("workers"));
    const mcmm::KernelPath path = mcmm::parse_kernel_path(cli.str("kernel"));

    // A machine profile pins down q, the worker count, and the autotuned
    // kernel configuration exactly like mcmm_serve; explicit flags win.
    mcmm::HostTopology topo;
    mcmm::KernelTuning tuning;
    if (!cli.str("machine").empty()) {
      const mcmm::MachineProfile profile =
          mcmm::load_machine_profile(cli.str("machine"));
      topo = profile.topology;
      if (!cli.is_set("workers")) workers = profile.machine_config().p;
      if (!cli.is_set("q")) q = profile.q;
      tuning = profile.kernel_tuning;
    } else {
      topo = mcmm::detect_host_topology();
    }
    if (workers == 0) {
      workers = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
    }
    MCMM_REQUIRE(workers >= 1 && q >= 1,
                 "bench_lu: workers and q must be >= 1");

    ThreadPool pool(workers);
    KernelContext ctx(path == mcmm::KernelPath::kAuto && tuning.tuned
                          ? KernelContext(workers, tuning)
                          : KernelContext(workers, path));
    ExecutionTracer tracer(workers);
    pool.set_tracer(&tracer);
    ctx.set_tracer(&tracer);
    if (cli.flag("pin")) {
      pool.pin_workers(mcmm::affinity_cpus(topo, workers));
    }

    const Matrix original = mcmm::diagonally_dominant_matrix(
        order, static_cast<std::uint64_t>(cli.integer("seed")));

    // Baseline: the loop-based overload, best of N.
    double baseline_ms = 0;
    Matrix baseline_lu(0, 0);
    for (std::int64_t r = 0; r < repeat; ++r) {
      Matrix a = original;
      tracer.reset();
      const double t0 = now_ms();
      mcmm::parallel_lu_factor(a, q, pool);
      const double wall = now_ms() - t0;
      if (r == 0 || wall < baseline_ms) baseline_ms = wall;
      if (r == 0) baseline_lu = std::move(a);
    }

    // Routed: the kernel-engine overload; keep the last run's trace.
    double routed_ms = 0;
    Matrix routed_lu(0, 0);
    TraceSummary routed_summary;
    for (std::int64_t r = 0; r < repeat; ++r) {
      Matrix a = original;
      tracer.reset();
      const double t0 = now_ms();
      mcmm::parallel_lu_factor(a, q, pool, ctx);
      const double wall = now_ms() - t0;
      routed_summary = summarize_trace(tracer);
      if (r == 0 || wall < routed_ms) routed_ms = wall;
      if (r == 0) routed_lu = std::move(a);
    }
    const PhaseTotals totals = aggregate_region_totals(routed_summary);
    std::int64_t spans = 0;
    for (std::int64_t s : totals.spans) spans += s;
    if (cli.flag("trace")) print_trace_summary(routed_summary);

    const double baseline_residual =
        mcmm::lu_residual(original, baseline_lu);
    const double routed_residual = mcmm::lu_residual(original, routed_lu);
    const double speedup = routed_ms > 0 ? baseline_ms / routed_ms : 0.0;
    // Routing only counts if the engine actually executed: a routed run
    // must record micro-kernel time (any order > q has trailing tiles).
    const bool engine_ran =
        order <= q || totals.ms(TracePhase::kMicroKernel) > 0;

    JsonWriter out;
    out.begin_object();
    out.kv("schema", "mcmm-lu-v1");
    out.kv("order", order);
    out.kv("q", q);
    out.kv("workers", workers);
    out.kv("pinned_workers", pool.pinned_workers());
    out.kv("kernel", ctx.dispatch_name());
    out.key("baseline").begin_object();
    out.kv("wall_ms", baseline_ms);
    out.kv("gflops", gflops(order, baseline_ms));
    out.kv("residual", baseline_residual);
    out.end_object();
    out.key("routed").begin_object();
    out.kv("wall_ms", routed_ms);
    out.kv("gflops", gflops(order, routed_ms));
    out.kv("residual", routed_residual);
    out.key("trace").begin_object();
    out.kv("pack_a_ms", totals.ms(TracePhase::kPackA));
    out.kv("pack_b_ms", totals.ms(TracePhase::kPackB));
    out.kv("micro_kernel_ms", totals.ms(TracePhase::kMicroKernel));
    out.kv("trsm_ms", totals.ms(TracePhase::kTrsm));
    out.kv("factor_ms", totals.ms(TracePhase::kFactor));
    out.kv("barrier_ms", totals.ms(TracePhase::kBarrier));
    out.kv("other_ms", totals.other_ms());
    out.kv("spans", spans);
    out.end_object();
    out.end_object();
    out.kv("speedup", speedup);
    out.end_object();

    const std::string report = out.str();
    std::printf("%s\n", report.c_str());
    if (!cli.str("json").empty()) {
      std::FILE* f = std::fopen(cli.str("json").c_str(), "w");
      MCMM_REQUIRE(f != nullptr, "bench_lu: cannot write " + cli.str("json"));
      std::fprintf(f, "%s\n", report.c_str());
      std::fclose(f);
    }

    // The residual scales the reconstruction error by n; for diagonally
    // dominant matrices both paths sit far below this.
    constexpr double kMaxResidual = 1e-9;
    if (baseline_residual > kMaxResidual || routed_residual > kMaxResidual) {
      std::fprintf(stderr,
                   "bench_lu: residual out of tolerance (baseline %.3e, "
                   "routed %.3e)\n",
                   baseline_residual, routed_residual);
      return 1;
    }
    if (!engine_ran) {
      std::fprintf(stderr,
                   "bench_lu: routed run recorded no micro-kernel spans\n");
      return 1;
    }
    const double min_speedup = cli.real("min-speedup");
    if (min_speedup > 0 && speedup < min_speedup) {
      std::fprintf(stderr, "bench_lu: speedup %.2f below required %.2f\n",
                   speedup, min_speedup);
      return 1;
    }
    return 0;
  } catch (const mcmm::Error& e) {
    std::fprintf(stderr, "bench_lu: %s\n", e.what());
    return 2;
  }
}
