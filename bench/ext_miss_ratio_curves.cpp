// Extension: exact miss-ratio curves from one reuse-distance pass.
//
// For each schedule, record core 0's access stream once and compute — via
// Olken's algorithm — the LRU miss count for EVERY distributed-cache
// capacity simultaneously.  The table prints the curve at a selection of
// capacities; the knee of each curve is the schedule's per-core working
// set, which for the cache-aware schedules sits exactly at the 1 + mu +
// mu^2 (or {a, b, c} = 3) footprint the paper designs for.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "48");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));

  SeriesTable table("capacity");
  std::vector<std::size_t> cols;
  const auto names = extended_algorithm_names();
  for (const auto& name : names) cols.push_back(table.add_series(name));

  const std::vector<std::int64_t> capacities = {1,  2,  3,  4,  6,  8,
                                                12, 16, 21, 32, 64, 128};
  for (std::size_t i = 0; i < names.size(); ++i) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(names[i])->run(machine, prob, cfg);
    const ReuseProfile profile = reuse_profile(trace.filter_core(0));
    for (const std::int64_t c : capacities) {
      table.set(cols[i], static_cast<double>(c),
                static_cast<double>(profile.lru_misses(c)));
    }
  }
  bench::emit(
      "Extension: core-0 LRU misses vs distributed-cache capacity, order " +
          std::to_string(prob.m) + " (one reuse-distance pass per schedule)",
      table, cli.flag("csv"));
  return 0;
}
