// Extension: how good is the paper's hand-managed IDEAL mode, really?
//
// For each schedule's core-0 access stream (the stream is policy-
// independent), compare four single-cache miss counts at the distributed
// capacity CD = 21:
//   MIN(C)        — Belady's optimal replacement, the per-trace floor;
//   IDEAL(C)      — the algorithm's own explicit load/evict management;
//   LRU(C)        — plain LRU at the same capacity;
//   LRU(2C)       — the Frigo et al. competitive regime (must be <= 2 MIN(C)).
//
// Expected: each Maximum Reuse variant's management sits within a few
// percent of MIN on the metric it was designed for, while plain LRU at
// exact capacity can be ~3x worse (the Figure 5 effect).
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "trace/belady.hpp"
#include "trace/reuse_distance.hpp"
#include "trace/trace.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "32");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));

  std::printf("# core-0 distributed-cache misses, capacity %lld blocks, "
              "order %lld\n",
              static_cast<long long>(cfg.cd), static_cast<long long>(prob.m));
  std::printf("%-24s %12s %12s %12s %12s\n", "algorithm", "MIN(C)",
              "IDEAL(C)", "LRU(C)", "LRU(2C)");
  for (const auto& name : extended_algorithm_names()) {
    const AlgorithmPtr alg = make_algorithm(name);
    const bool ideal_ok = alg->supports_ideal();
    Machine machine(cfg, ideal_ok ? Policy::kIdeal : Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    alg->run(machine, prob, cfg);
    const Trace core0 = trace.filter_core(0);
    std::vector<BlockId> stream;
    stream.reserve(core0.size());
    for (std::size_t i = 0; i < core0.size(); ++i) {
      stream.push_back(core0[i].block());
    }
    const ReuseProfile lru = reuse_profile(core0);
    char ideal_buf[24];
    if (ideal_ok) {
      std::snprintf(ideal_buf, sizeof(ideal_buf), "%lld",
                    static_cast<long long>(machine.stats().dist_misses[0]));
    } else {
      std::snprintf(ideal_buf, sizeof(ideal_buf), "-");
    }
    std::printf("%-24s %12lld %12s %12lld %12lld\n", name.c_str(),
                static_cast<long long>(belady_misses(stream, cfg.cd)),
                ideal_buf,
                static_cast<long long>(lru.lru_misses(cfg.cd)),
                static_cast<long long>(lru.lru_misses(2 * cfg.cd)));
  }
  return 0;
}
