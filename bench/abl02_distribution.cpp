// Ablation: Distributed Opt.'s 2-D cyclic distribution vs contiguous
// column strips (Section 3.2 motivates the 2-D layout; this bench
// quantifies it).  Under IDEAL, the strip layout loads a sqrt(p)-times
// taller A fragment per core per k: MD grows by the streaming ratio
// (sqrt(p) + 1/sqrt(p)) / 2 = 1.25 for p = 4, MS is unchanged.
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Ablation 2",
                                   /*default_max=*/160, /*paper_max=*/600,
                                   /*default_step=*/32, &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  // The MD and MS columns of one layout read the same simulation; the
  // sweep engine's memo cache runs it once.
  bench::BenchDriver driver("abl02", opt);
  for (const Setting setting : {Setting::kIdeal, Setting::kLru50}) {
    SeriesTable& table = driver.table(
        std::string("Ablation: C-tile distribution, CS=977 CD=21, ") +
            to_string(setting) + " setting",
        "order");
    const auto s_cyc_md = table.add_series("cyclic.MD");
    const auto s_lin_md = table.add_series("linear.MD");
    const auto s_cyc_ms = table.add_series("cyclic.MS");
    const auto s_lin_ms = table.add_series("linear.MS");
    for (const std::int64_t order :
         order_sweep(opt.min_order, opt.max_order, opt.step)) {
      const auto x = static_cast<double>(order);
      driver.cell(s_cyc_md, x, "distributed-opt", order, cfg, setting,
                  Metric::kMd);
      driver.cell(s_lin_md, x, "distributed-opt-linear", order, cfg, setting,
                  Metric::kMd);
      driver.cell(s_cyc_ms, x, "distributed-opt", order, cfg, setting,
                  Metric::kMs);
      driver.cell(s_lin_ms, x, "distributed-opt-linear", order, cfg, setting,
                  Metric::kMs);
    }
  }
  driver.finish();
  return 0;
}
