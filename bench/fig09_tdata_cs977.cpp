// Figure 9 (a-d): overall data access time Tdata for all six algorithms,
// CS = 977 (q = 32), CD in {21, 16}, under the LRU-50 and IDEAL settings.
//
// Expected shape: Tradeoff offers the best Tdata with Shared Opt. a close
// second; Outer Product is far worst.
#include "bench_common.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 9", /*default_max=*/160,
                                   /*paper_max=*/1100, /*default_step=*/32,
                                   &opt)) {
    return 0;
  }
  bench::run_tdata_figure("Figure 9", 977, {21, 16}, opt);
  return 0;
}
