// Figure 11 (a-d): Tdata for all six algorithms, CS = 157 (q = 80),
// CD in {4, 3}, under the LRU-50 and IDEAL settings.
//
// Expected shape: parameter rounding (alpha snapped to the sqrt(p) mu
// grid) hurts Tradeoff; Shared Opt. ranks at least as well.
#include "bench_common.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 11",
                                   /*default_max=*/160, /*paper_max=*/1100,
                                   /*default_step=*/32, &opt)) {
    return 0;
  }
  bench::run_tdata_figure("Figure 11", 157, {4, 3}, opt);
  return 0;
}
