// Extension: clusters of multicores (the paper's closing future-work
// item).  A three-level machine — cluster cache over `nodes` node caches
// over per-core caches — runs the generalised Maximum Reuse schedule
// against two flat baselines replayed from the two-level simulator:
// Outer Product (no tiling) and Shared Opt. (tiles only for the top
// cache).  The table reports the busiest cache's misses per level; the
// hierarchical tiling is the only schedule that behaves at the middle
// (node) level.
//
// The hierarchical simulator bypasses run_experiment, so the cells ride
// the sweep engine as custom closures — each builds its own machines and
// traces, keeping the parallel run race-free.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "hier/hier_machine.hpp"
#include "hier/hier_max_reuse.hpp"
#include "trace/trace.hpp"

using namespace mcmm;

namespace {

HierConfig cluster() {
  return HierConfig::cluster_of_multicores(/*cluster_cache=*/4096,
                                           /*nodes=*/4, /*node_cache=*/512,
                                           /*p=*/4, /*private_cache=*/21);
}

Trace record_flat(const std::string& name, const Problem& prob) {
  MachineConfig flat;
  flat.p = 16;
  flat.cs = 4096;
  flat.cd = 21;
  Machine machine(flat, Policy::kLru);
  Trace trace;
  record_into(machine, trace);
  make_algorithm(name)->run(machine, prob, flat.with_caches_scaled(1, 2));
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Hierarchy extension",
                                   /*default_max=*/96, /*paper_max=*/256,
                                   /*default_step=*/16, &opt)) {
    return 0;
  }
  const HierConfig cfg = cluster();

  bench::BenchDriver driver("ext_hierarchy", opt);
  for (int level = 0; level < 3; ++level) {
    const char* names[] = {"cluster cache (4096)", "node caches (512 x4)",
                           "private caches (21 x16)"};
    SeriesTable& table = driver.table(
        std::string("Hierarchy extension: busiest-cache misses at level ") +
            std::to_string(level) + " — " +
            names[static_cast<std::size_t>(level)],
        "order");
    const auto s_ours = table.add_series("hier-max-reuse");
    const auto s_shared = table.add_series("flat-shared-opt");
    const auto s_outer = table.add_series("flat-outer-product");
    const auto s_bound = table.add_series("LowerBound");

    for (const std::int64_t order :
         order_sweep(opt.min_order, opt.max_order, opt.step)) {
      const Problem prob = Problem::square(order);
      const auto x = static_cast<double>(order);

      driver.cell_custom(s_ours, x, [cfg, prob, level] {
        HierMachine ours(cfg);
        run_hier_max_reuse(ours, prob);
        return static_cast<double>(ours.level_stats(level).max_misses());
      });
      driver.cell_custom(s_shared, x, [cfg, prob, level] {
        HierMachine shared(cfg);
        replay_trace(record_flat("shared-opt", prob), shared);
        return static_cast<double>(shared.level_stats(level).max_misses());
      });
      driver.cell_custom(s_outer, x, [cfg, prob, level] {
        HierMachine outer(cfg);
        replay_trace(record_flat("outer-product", prob), outer);
        return static_cast<double>(outer.level_stats(level).max_misses());
      });
      table.set(s_bound, x,
                hier_lower_bounds(cfg, prob)[static_cast<std::size_t>(level)]);
    }
  }
  driver.finish();
  return 0;
}
