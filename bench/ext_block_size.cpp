// Extension: the unit block size q as a continuous design parameter.
//
// The paper evaluates three block sizes (q = 32, 64, 80) and concludes
// "unit block of size q = 64 or larger is not a relevant choice for
// Distributed Opt."  This bench sweeps q at a FIXED coefficient-level
// problem (order_coeffs x order_coeffs doubles): growing q shrinks both
// the block-count order (n = order_coeffs/q) and the block capacities
// (CS, CD ~ 1/q^2), and mu = largest v with 1+v+v^2 <= CD collapses in
// discrete cliffs (4 -> 3 -> 1 on the 256 KB private cache).  Misses are
// reported in coefficients (blocks * q^2) so different q are comparable.
#include "analysis/bounds.hpp"
#include "analysis/params.hpp"
#include "bench_common.hpp"
#include "exp/experiment.hpp"
#include "util/math.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order-coeffs", "matrix order in coefficients", "6144");
  if (!cli.parse(argc, argv)) return 0;
  const std::int64_t oc = cli.integer("order-coeffs");

  SeriesTable table("q");
  const auto s_mu = table.add_series("mu");
  const auto s_lambda = table.add_series("lambda");
  const auto s_md = table.add_series("DistOpt.MD.coeffs");
  const auto s_md_bound = table.add_series("MD.bound.coeffs");
  const auto s_tdata = table.add_series("Tradeoff.Tdata.coeffs");

  for (const std::int64_t q : {16, 24, 32, 48, 64, 80, 96, 128}) {
    if (oc % q != 0) continue;
    const MachineConfig cfg = MachineConfig::realistic_quadcore(q, 2.0 / 3.0);
    if (cfg.cd < 3) continue;  // block too large for the private caches
    const Problem prob = Problem::square(oc / q);
    const double q2 = static_cast<double>(q) * static_cast<double>(q);
    const auto x = static_cast<double>(q);

    table.set(s_mu, x,
              static_cast<double>(max_reuse_parameter(cfg.cd)));
    table.set(s_lambda, x,
              static_cast<double>(shared_opt_params(cfg.cs).lambda));
    const RunResult dist =
        run_experiment("distributed-opt", prob, cfg, Setting::kIdeal);
    table.set(s_md, x, static_cast<double>(dist.md) * q2);
    table.set(s_md_bound, x,
              md_lower_bound(prob, cfg.p, cfg.cd) * q2);
    const RunResult trade =
        run_experiment("tradeoff", prob, cfg, Setting::kIdeal);
    table.set(s_tdata, x, trade.tdata * q2);
  }
  bench::emit(
      "Extension: block-size sweep at " + std::to_string(oc) + "^2 "
      "coefficients (8MB/256KB quad-core) — the paper's q=64 cliff",
      table, cli.flag("csv"));
  return 0;
}
