// Extension: the original master-worker Maximum Reuse Algorithm [7] the
// paper adapts to multicores.  Two tables:
//  1. communication volume vs per-worker memory (MRA vs equal-thirds vs
//     the 2 mnz / sqrt(M) lower bound) — the sqrt(3) gap the paper's
//     Section 3 inherits;
//  2. makespan vs the link bandwidth, showing the communication-bound to
//     compute-bound transition that motivates minimising volume at all.
#include "bench_common.hpp"
#include "mw/master_worker.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "96");
  cli.add_option("workers", "worker count", "4");
  if (!cli.parse(argc, argv)) return 0;
  const Problem prob = Problem::square(cli.integer("order"));
  const int workers = static_cast<int>(cli.integer("workers"));

  {
    SeriesTable table("memory");
    const auto s_mra = table.add_series("maximum-reuse");
    const auto s_eq = table.add_series("equal-thirds");
    const auto s_bound = table.add_series("LowerBound");
    for (const std::int64_t memory : {7, 13, 21, 57, 157, 273, 993}) {
      MwConfig cfg;
      cfg.workers = workers;
      cfg.memory_blocks = memory;
      const auto x = static_cast<double>(memory);
      table.set(s_mra, x,
                static_cast<double>(
                    run_master_worker(cfg, prob, MwSchedule::kMaximumReuse)
                        .volume));
      table.set(s_eq, x,
                static_cast<double>(
                    run_master_worker(cfg, prob, MwSchedule::kEqualThirds)
                        .volume));
      table.set(s_bound, x, mw_volume_lower_bound(prob, memory));
    }
    bench::emit("Master-worker: communication volume vs per-worker memory, "
                "order " + std::to_string(prob.m),
                table, cli.flag("csv"));
  }

  {
    SeriesTable table("bandwidth");
    const auto s_mra = table.add_series("maximum-reuse.makespan");
    const auto s_eq = table.add_series("equal-thirds.makespan");
    const auto s_comp = table.add_series("pure-compute");
    for (const double bw : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      MwConfig cfg;
      cfg.workers = workers;
      cfg.memory_blocks = 21;
      cfg.bandwidth = bw;
      const MwResult mra =
          run_master_worker(cfg, prob, MwSchedule::kMaximumReuse);
      const MwResult eq =
          run_master_worker(cfg, prob, MwSchedule::kEqualThirds);
      table.set(s_mra, bw, mra.makespan);
      table.set(s_eq, bw, eq.makespan);
      table.set(s_comp, bw, mra.compute_time);
    }
    bench::emit("Master-worker: makespan vs link bandwidth (M = 21): volume "
                "savings only matter while the link is the bottleneck",
                table, cli.flag("csv"));
  }
  return 0;
}
