// Figure 4: impact of the LRU policy on the shared-cache misses MS of
// Shared Opt. (CS = 977, the q=32 quad-core).
//
// Series, as in the paper:
//   Shared Opt. LRU (2CS) — LRU machine with doubled caches, full declared
//   Shared Opt. LRU (CS)  — LRU machine with the exact declared sizes
//   Formula (CS)          — the IDEAL closed form mn + 2mnz/lambda
//   2 x Formula (CS)      — the Frigo et al. competitiveness ceiling
//
// Expected shape: LRU(2CS) stays below 2 x Formula; LRU(CS) exceeds the
// formula noticeably.
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 4", /*default_max=*/240,
                                   /*paper_max=*/600, /*default_step=*/40,
                                   &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  bench::BenchDriver driver("fig04", opt);
  SeriesTable& table = driver.table(
      "Figure 4: MS of Shared Opt. under LRU vs formula, CS=977", "order");
  const auto s_2cs = table.add_series("LRU(2CS)");
  const auto s_cs = table.add_series("LRU(CS)");
  const auto s_formula = table.add_series("Formula(CS)");
  const auto s_formula2 = table.add_series("2xFormula(CS)");

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const Problem prob = Problem::square(order);
    const auto x = static_cast<double>(order);
    driver.cell(s_2cs, x, "shared-opt", order, cfg, Setting::kLruDouble,
                Metric::kMs);
    driver.cell(s_cs, x, "shared-opt", order, cfg, Setting::kLruFull,
                Metric::kMs);
    const double formula =
        predict_shared_opt(prob, cfg.p, shared_opt_params(cfg.cs)).ms;
    table.set(s_formula, x, formula);
    table.set(s_formula2, x, 2 * formula);
  }
  driver.finish();
  return 0;
}
