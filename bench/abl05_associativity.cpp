// Ablation: the paper's full-associativity assumption.
//
// Real distributed caches are W-way set-associative.  Replay each
// schedule's core-0 access stream through a set-associative LRU cache of
// the same total capacity at several associativities: the gap between
// ways=1 (direct-mapped) and ways=capacity (the paper's model) is the
// conflict-miss cost the ideal-cache abstraction hides.  Cache-aware
// schedules keep small, dense working sets, so modest associativity (4-8
// ways) already recovers nearly all of it.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "sim/set_assoc_cache.hpp"
#include "trace/trace.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "48");
  cli.add_option("capacity", "cache capacity in blocks (divisible by ways)",
                 "20");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));
  const std::int64_t capacity = cli.integer("capacity");

  SeriesTable table("ways");
  std::vector<std::size_t> cols;
  const auto names = extended_algorithm_names();
  for (const auto& name : names) cols.push_back(table.add_series(name));

  for (std::size_t i = 0; i < names.size(); ++i) {
    Machine machine(cfg, Policy::kLru);
    Trace trace;
    record_into(machine, trace);
    make_algorithm(names[i])->run(machine, prob, cfg);
    const Trace core0 = trace.filter_core(0);

    for (std::int64_t ways = 1; ways <= capacity; ways *= 2) {
      if (capacity % ways != 0) continue;
      SetAssocCache cache(capacity, ways);
      std::int64_t misses = 0;
      for (std::size_t e = 0; e < core0.size(); ++e) {
        const BlockId b = core0[e].block();
        if (!cache.touch(b)) {
          ++misses;
          cache.insert(b, false);
        }
      }
      table.set(cols[i], static_cast<double>(ways),
                static_cast<double>(misses));
    }
    // The fully-associative reference (ways == capacity).
    SetAssocCache cache(capacity, capacity);
    std::int64_t misses = 0;
    for (std::size_t e = 0; e < core0.size(); ++e) {
      const BlockId b = core0[e].block();
      if (!cache.touch(b)) {
        ++misses;
        cache.insert(b, false);
      }
    }
    table.set(cols[i], static_cast<double>(capacity),
              static_cast<double>(misses));
  }
  bench::emit("Ablation: core-0 misses vs associativity, capacity " +
                  std::to_string(capacity) + " blocks, order " +
                  std::to_string(prob.m),
              table, cli.flag("csv"));
  return 0;
}
