// Figure 8 (a,b,c): distributed-cache misses MD vs matrix order.
//
// Sub-figures: CD = 21 (q=32, 2/3 of the cache for data), CD = 16 (q=32,
// 1/2 for data), CD = 6 (q=64 — the regime where mu = 1 and Distributed
// Opt. loses its advantage).
//
// Series: Distributed Opt. LRU-50, Distributed Opt. IDEAL, Distributed
//         Equal LRU-50, Outer Product, lower bound (m^3/p) sqrt(27/(8 CD)).
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

namespace {

void run_subfigure(bench::BenchDriver& driver, const char* title,
                   std::int64_t cs, std::int64_t cd,
                   const bench::FigureOptions& opt) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = cs;
  cfg.cd = cd;
  SeriesTable& table = driver.table(title, "order");
  const auto s_opt_lru = table.add_series("DistOpt.LRU-50");
  const auto s_opt_ideal = table.add_series("DistOpt.IDEAL");
  const auto s_equal = table.add_series("DistEqual.LRU-50");
  const auto s_outer = table.add_series("OuterProduct");
  const auto s_bound = table.add_series("LowerBound");

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const auto x = static_cast<double>(order);
    driver.cell(s_opt_lru, x, "distributed-opt", order, cfg, Setting::kLru50,
                Metric::kMd);
    driver.cell(s_opt_ideal, x, "distributed-opt", order, cfg, Setting::kIdeal,
                Metric::kMd);
    driver.cell(s_equal, x, "distributed-equal", order, cfg, Setting::kLru50,
                Metric::kMd);
    driver.cell(s_outer, x, "outer-product", order, cfg, Setting::kLru50,
                Metric::kMd);
    table.set(s_bound, x,
              md_lower_bound(Problem::square(order), cfg.p, cfg.cd));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 8", /*default_max=*/192,
                                   /*paper_max=*/1100, /*default_step=*/32,
                                   &opt)) {
    return 0;
  }
  bench::BenchDriver driver("fig08", opt);
  run_subfigure(driver, "Figure 8(a): MD vs order, CD=21 (q=32, 2/3 data)",
                977, 21, opt);
  run_subfigure(driver, "Figure 8(b): MD vs order, CD=16 (q=32, 1/2 data)",
                977, 16, opt);
  run_subfigure(driver, "Figure 8(c): MD vs order, CD=6 (q=64, mu=1)", 245, 6,
                opt);
  driver.finish();
  return 0;
}
