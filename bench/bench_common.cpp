#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "analysis/bounds.hpp"
#include "exp/bench_report.hpp"
#include "exp/sweep.hpp"
#include "gemm/thread_pool.hpp"

namespace mcmm::bench {

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

void emit(const std::string& title, const SeriesTable& table, bool csv) {
  std::printf("# %s\n", title.c_str());
  if (csv) {
    table.print_csv();
  } else {
    table.print_pretty();
  }
  std::printf("\n");
}

double measure(const std::string& algorithm, std::int64_t order,
               const MachineConfig& cfg, Setting setting, Metric metric) {
  return metric_of(
      run_experiment(algorithm, Problem::square(order), cfg, setting), metric);
}

BenchDriver::BenchDriver(std::string bench_name, const FigureOptions& opt)
    : name_(std::move(bench_name)), opt_(opt), runner_(opt.jobs) {}

SeriesTable& BenchDriver::table(const std::string& title,
                                const std::string& x_label) {
  tables_.push_back(Titled{title, SeriesTable(x_label)});
  return tables_.back().table;
}

SeriesTable& BenchDriver::timing_table(const std::string& title,
                                       const std::string& x_label) {
  timing_tables_.push_back(Titled{title, SeriesTable(x_label)});
  return timing_tables_.back().table;
}

void BenchDriver::cell(std::size_t series, double x,
                       const std::string& algorithm, std::int64_t order,
                       const MachineConfig& cfg, Setting setting,
                       Metric metric) {
  MCMM_REQUIRE(!tables_.empty(), "BenchDriver::cell: no table started");
  const std::size_t req =
      runner_.request(SweepPoint::square(algorithm, order, cfg, setting),
                      metric);
  sim_fills_.push_back(SimFill{tables_.size() - 1, series, x, req});
}

void BenchDriver::cell_custom(std::size_t series, double x,
                              std::function<double()> fn) {
  MCMM_REQUIRE(!tables_.empty(), "BenchDriver::cell_custom: no table started");
  custom_fills_.push_back(
      CustomFill{tables_.size() - 1, series, x, std::move(fn), 0, 0});
}

void BenchDriver::annotate(const std::string& key, const std::string& value) {
  annotations_.emplace_back(key, value);
}

void BenchDriver::set_trace_summary(std::string trace_json) {
  trace_json_ = std::move(trace_json);
}

void BenchDriver::finish() {
  MCMM_REQUIRE(!finished_, "BenchDriver::finish: called twice");
  finished_ = true;

  runner_.run();

  // Custom closures ride the same generic task-batch machinery; each one
  // writes only its own slot, so results stay deterministic.
  double custom_wall_ms = 0;
  if (!custom_fills_.empty()) {
    const double t0 = now_ms();
    const auto evaluate = [this](std::size_t i) {
      CustomFill& c = custom_fills_[i];
      const double start = now_ms();
      c.value = c.fn();
      c.wall_ms = now_ms() - start;
    };
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(opt_.jobs), custom_fills_.size()));
    if (workers <= 1) {
      for (std::size_t i = 0; i < custom_fills_.size(); ++i) evaluate(i);
    } else {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(custom_fills_.size());
      for (std::size_t i = 0; i < custom_fills_.size(); ++i) {
        tasks.emplace_back([&evaluate, i] { evaluate(i); });
      }
      ThreadPool pool(workers);
      pool.run_batch(tasks);
    }
    custom_wall_ms = now_ms() - t0;
  }

  for (const SimFill& f : sim_fills_) {
    tables_[f.table].table.set(f.series, f.x, runner_.value(f.request));
  }
  for (const CustomFill& c : custom_fills_) {
    tables_[c.table].table.set(c.series, c.x, c.value);
  }

  for (const Titled& t : tables_) emit(t.title, t.table, opt_.csv);
  for (const Titled& t : timing_tables_) emit(t.title, t.table, opt_.csv);

  if (opt_.json_path.empty()) return;
  BenchReport report(name_);
  for (const auto& [key, value] : annotations_) report.set_context(key, value);
  for (const Titled& t : tables_) report.add_table(t.title, t.table);
  for (const Titled& t : timing_tables_) {
    report.add_timing_table(t.title, t.table);
  }
  for (std::size_t sim = 0; sim < runner_.num_simulations(); ++sim) {
    const RunResult& res = runner_.result(sim);
    report.add_point(runner_.simulation(sim), static_cast<double>(res.ms),
                     static_cast<double>(res.md), res.tdata,
                     runner_.wall_ms(sim));
  }
  report.set_requests(runner_.num_requests(), runner_.cache_hits());
  double custom_serial_ms = 0;
  for (const CustomFill& c : custom_fills_) custom_serial_ms += c.wall_ms;
  report.set_timing(opt_.jobs, runner_.total_wall_ms() + custom_wall_ms,
                    runner_.serial_wall_ms() + custom_serial_ms);
  if (!trace_json_.empty()) report.set_trace_summary(trace_json_);
  report.write(opt_.json_path);
  // Status note on stderr so stdout stays byte-comparable across --jobs.
  std::fprintf(stderr, "bench report written to %s\n", opt_.json_path.c_str());
}

void run_tdata_figure(const std::string& figure, std::int64_t cs,
                      const std::vector<std::int64_t>& cds,
                      const FigureOptions& opt) {
  BenchDriver driver(figure, opt);
  const char* sub = "abcd";
  int sub_idx = 0;
  for (const std::int64_t cd : cds) {
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = cs;
    cfg.cd = cd;
    const std::vector<std::int64_t> orders =
        order_sweep(opt.min_order, opt.max_order, opt.step);

    for (const Setting setting : {Setting::kLru50, Setting::kIdeal}) {
      const std::string title =
          figure + "(" + sub[sub_idx] + "): Tdata vs order, CS=" +
          std::to_string(cs) + " CD=" + std::to_string(cd) + ", " +
          to_string(setting) + " setting";
      SeriesTable& table = driver.table(title, "order");
      std::vector<std::size_t> cols;
      const std::vector<std::string> algs = {
          "shared-opt",    "distributed-opt", "tradeoff",
          "outer-product", "shared-equal",    "distributed-equal"};
      for (const auto& a : algs) {
        cols.push_back(table.add_series(a + "." + to_string(setting)));
      }
      // The paper overlays Tradeoff IDEAL on the LRU-50 sub-figures; the
      // memo cache makes the overlay free (the IDEAL sub-figure simulates
      // the same points).
      std::size_t col_trade_ideal = 0;
      if (setting == Setting::kLru50) {
        col_trade_ideal = table.add_series("tradeoff.IDEAL");
      }
      const std::size_t col_bound = table.add_series("LowerBound");

      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        for (std::size_t i = 0; i < algs.size(); ++i) {
          driver.cell(cols[i], x, algs[i], order, cfg, setting,
                      Metric::kTdata);
        }
        if (setting == Setting::kLru50) {
          driver.cell(col_trade_ideal, x, "tradeoff", order, cfg,
                      Setting::kIdeal, Metric::kTdata);
        }
        table.set(col_bound, x,
                  tdata_lower_bound(Problem::square(order), cfg));
      }
      ++sub_idx;
    }
  }
  driver.finish();
}

}  // namespace mcmm::bench
