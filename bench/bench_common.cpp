#include "bench_common.hpp"

#include <cstdio>

#include "analysis/bounds.hpp"
#include "exp/sweep.hpp"

namespace mcmm::bench {

bool parse_figure_options(int argc, const char* const* argv,
                          const std::string& blurb, std::int64_t default_max,
                          std::int64_t paper_max, std::int64_t default_step,
                          FigureOptions* out) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  cli.add_flag("full", "use the paper's full sweep range (slow)");
  cli.add_option("max-order", "largest matrix order in blocks (0 = preset)",
                 "0");
  cli.add_option("min-order", "smallest matrix order in blocks (0 = step)",
                 "0");
  cli.add_option("step", "sweep step in blocks (0 = preset)", "0");
  if (!cli.parse(argc, argv)) {
    (void)blurb;
    return false;
  }
  out->csv = cli.flag("csv");
  out->max_order = cli.integer("max-order");
  if (out->max_order == 0) {
    out->max_order = cli.flag("full") ? paper_max : default_max;
  }
  out->step = cli.integer("step");
  if (out->step == 0) out->step = default_step;
  out->min_order = cli.integer("min-order");
  if (out->min_order == 0) out->min_order = out->step;
  return true;
}

void emit(const std::string& title, const SeriesTable& table, bool csv) {
  std::printf("# %s\n", title.c_str());
  if (csv) {
    table.print_csv();
  } else {
    table.print_pretty();
  }
  std::printf("\n");
}

double measure(const std::string& algorithm, std::int64_t order,
               const MachineConfig& cfg, Setting setting, Metric metric) {
  const RunResult res =
      run_experiment(algorithm, Problem::square(order), cfg, setting);
  switch (metric) {
    case Metric::kMs: return static_cast<double>(res.ms);
    case Metric::kMd: return static_cast<double>(res.md);
    case Metric::kTdata: return res.tdata;
  }
  return 0;
}

void run_tdata_figure(const std::string& figure, std::int64_t cs,
                      const std::vector<std::int64_t>& cds,
                      const FigureOptions& opt) {
  const char* sub = "abcd";
  int sub_idx = 0;
  for (const std::int64_t cd : cds) {
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = cs;
    cfg.cd = cd;
    const std::vector<std::int64_t> orders =
        order_sweep(opt.min_order, opt.max_order, opt.step);

    for (const Setting setting : {Setting::kLru50, Setting::kIdeal}) {
      SeriesTable table("order");
      std::vector<std::size_t> cols;
      const std::vector<std::string> algs = {
          "shared-opt",    "distributed-opt", "tradeoff",
          "outer-product", "shared-equal",    "distributed-equal"};
      for (const auto& a : algs) {
        cols.push_back(table.add_series(a + "." + to_string(setting)));
      }
      // The paper overlays Tradeoff IDEAL on the LRU-50 sub-figures.
      std::size_t col_trade_ideal = 0;
      if (setting == Setting::kLru50) {
        col_trade_ideal = table.add_series("tradeoff.IDEAL");
      }
      const std::size_t col_bound = table.add_series("LowerBound");

      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        for (std::size_t i = 0; i < algs.size(); ++i) {
          table.set(cols[i], x,
                    measure(algs[i], order, cfg, setting, Metric::kTdata));
        }
        if (setting == Setting::kLru50) {
          table.set(col_trade_ideal, x,
                    measure("tradeoff", order, cfg, Setting::kIdeal,
                            Metric::kTdata));
        }
        table.set(col_bound, x,
                  tdata_lower_bound(Problem::square(order), cfg));
      }
      const std::string title =
          figure + "(" + sub[sub_idx] + "): Tdata vs order, CS=" +
          std::to_string(cs) + " CD=" + std::to_string(cd) + ", " +
          to_string(setting) + " setting";
      emit(title, table, opt.csv);
      ++sub_idx;
    }
  }
}

}  // namespace mcmm::bench
