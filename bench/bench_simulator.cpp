// Timing benchmarks for the cache simulator itself: accesses per second of
// the LRU hierarchy and end-to-end simulation throughput per schedule.
// These guard the simulator's performance, which caps the figure sweeps.
#include <benchmark/benchmark.h>

#include "alg/registry.hpp"
#include "exp/experiment.hpp"
#include "sim/machine.hpp"

namespace {

using namespace mcmm;

MachineConfig quadcore() {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  return cfg;
}

void BM_LruAccessHit(benchmark::State& state) {
  Machine m(quadcore(), Policy::kLru);
  m.access(0, BlockId::a(0, 0), Rw::kRead);
  for (auto _ : state) {
    m.access(0, BlockId::a(0, 0), Rw::kRead);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccessHit);

void BM_LruAccessStreaming(benchmark::State& state) {
  // Worst case: every access misses both levels (block ids never repeat
  // within a cache lifetime).
  Machine m(quadcore(), Policy::kLru);
  std::int64_t i = 0;
  for (auto _ : state) {
    m.access(0, BlockId::a(i & 0xFFFFF, (i >> 20) & 0x3FF), Rw::kRead);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruAccessStreaming);

void BM_LruFma(benchmark::State& state) {
  Machine m(quadcore(), Policy::kLru);
  std::int64_t k = 0;
  for (auto _ : state) {
    m.fma(0, k % 64, (k / 64) % 64, k % 97);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruFma);

void BM_EndToEnd(benchmark::State& state, const char* name, Setting setting) {
  const auto order = state.range(0);
  for (auto _ : state) {
    const RunResult res =
        run_experiment(name, Problem::square(order), quadcore(), setting);
    benchmark::DoNotOptimize(res.ms);
  }
  state.SetItemsProcessed(state.iterations() * order * order * order);
  state.counters["order"] = static_cast<double>(order);
}

void BM_SharedOptLru(benchmark::State& state) {
  BM_EndToEnd(state, "shared-opt", Setting::kLru50);
}
BENCHMARK(BM_SharedOptLru)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SharedOptIdeal(benchmark::State& state) {
  BM_EndToEnd(state, "shared-opt", Setting::kIdeal);
}
BENCHMARK(BM_SharedOptIdeal)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_DistributedOptLru(benchmark::State& state) {
  BM_EndToEnd(state, "distributed-opt", Setting::kLru50);
}
BENCHMARK(BM_DistributedOptLru)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TradeoffLru(benchmark::State& state) {
  BM_EndToEnd(state, "tradeoff", Setting::kLru50);
}
BENCHMARK(BM_TradeoffLru)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_OuterProductLru(benchmark::State& state) {
  BM_EndToEnd(state, "outer-product", Setting::kLru50);
}
BENCHMARK(BM_OuterProductLru)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
