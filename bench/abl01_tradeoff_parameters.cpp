// Ablation: the Tradeoff's parameter choice (Section 3.3).
//
// Sweeps alpha over its feasible grid (multiples of sqrt(p)*mu up to
// alpha_max), pinning beta = max((CS - alpha^2)/(2 alpha), 1) as in the
// paper, and simulates each pinned schedule under IDEAL.  The minimum of
// the measured Tdata curve should sit at (or next to) the alpha the
// closed-form solver picks — i.e. the analysis, not the simulation, is
// what chooses the parameters.
#include <cstdio>

#include "alg/tradeoff.hpp"
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "sim/machine.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "96");
  cli.add_option("r", "bandwidth ratio sigmaS/(sigmaS+sigmaD)", "0.5");
  if (!cli.parse(argc, argv)) return 0;

  const MachineConfig cfg = [&] {
    MachineConfig c;
    c.p = 4;
    c.cs = 977;
    c.cd = 21;
    return c.with_bandwidth_ratio(cli.real("r"));
  }();
  const Problem prob = Problem::square(cli.integer("order"));
  const TradeoffParams chosen = tradeoff_params(cfg);

  std::printf("# Ablation: Tradeoff alpha sweep (CS=977, CD=21, r=%s)\n",
              cli.str("r").c_str());
  std::printf("# solver picks alpha=%lld beta=%lld (alpha_num=%.2f)\n",
              static_cast<long long>(chosen.alpha),
              static_cast<long long>(chosen.beta), chosen.alpha_num);

  SeriesTable table("alpha");
  const auto s_beta = table.add_series("beta");
  const auto s_meas = table.add_series("Tdata.measured");
  const auto s_pred = table.add_series("Tdata.predicted");
  const std::int64_t grain = chosen.grain();
  for (std::int64_t alpha = grain; alpha <= chosen.alpha_max; alpha += grain) {
    TradeoffParams pinned = chosen;
    pinned.alpha = alpha;
    pinned.beta =
        std::max<std::int64_t>((cfg.cs - alpha * alpha) / (2 * alpha), 1);
    if (alpha * alpha + 2 * alpha * pinned.beta > cfg.cs) continue;

    Machine machine(cfg, Policy::kIdeal);
    Tradeoff(pinned).run(machine, prob, cfg);

    const auto x = static_cast<double>(alpha);
    table.set(s_beta, x, static_cast<double>(pinned.beta));
    table.set(s_meas, x, machine.stats().tdata(cfg.sigma_s, cfg.sigma_d));
    table.set(s_pred, x,
              predict_tradeoff(prob, cfg.p, pinned)
                  .tdata(cfg.sigma_s, cfg.sigma_d));
  }
  bench::emit("Tdata vs alpha (beta from the paper's closed form)", table,
              cli.flag("csv"));
  return 0;
}
