// Extension: when does the memory schedule stop mattering?
//
// The paper optimises pure data traffic (Tdata); real executions overlap
// transfers with computation.  Under the perfect-overlap envelope the
// execution time is the slowest of {shared channel, busiest private
// channel, busiest core}, so each schedule has a *balance rate* — the
// per-core compute speed (block FMAs per transfer-time unit) above which
// it turns memory-bound.  Sweeping the compute rate shows the regimes:
// at low rates every schedule is compute-bound and identical; past each
// schedule's balance point the curves split exactly by their traffic,
// and the cache-aware schedules stay compute-bound an order of magnitude
// longer than Outer Product.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "exp/timeline.hpp"
#include "sim/machine.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "48");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));

  // One simulation per schedule; the envelope is analytic in the rate.
  std::vector<MachineStats> stats;
  const auto names = algorithm_names();
  for (const auto& name : names) {
    const AlgorithmPtr alg = make_algorithm(name);
    Machine machine(cfg, alg->supports_ideal() ? Policy::kIdeal : Policy::kLru);
    alg->run(machine, prob, cfg);
    stats.push_back(machine.stats());
  }

  std::printf("# balance rates (block FMAs per transfer unit) at order %lld:\n",
              static_cast<long long>(prob.m));
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::printf("#   %-20s %8.3f\n", names[i].c_str(),
                balance_rate(stats[i], cfg));
  }

  SeriesTable table("rate");
  std::vector<std::size_t> cols;
  for (const auto& name : names) {
    cols.push_back(table.add_series(name + ".overlap"));
  }
  for (const double rate : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      table.set(cols[i], rate,
                time_envelope(stats[i], cfg, rate).overlap);
    }
  }
  bench::emit(
      "Extension: perfect-overlap execution time vs per-core compute rate",
      table, cli.flag("csv"));
  return 0;
}
