// Ablation: how much of the physical cache should an LRU-run algorithm
// claim?  Generalises the paper's LRU-50 setting (which declares one
// half): sweep the declared fraction and measure the metric each schedule
// optimises.  Declaring everything leaves no slack for the LRU policy's
// imperfect replacement; declaring too little wastes capacity — the
// sweet spot near 50% is why the paper picked LRU-50.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "90");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig physical;
  physical.p = 4;
  physical.cs = 977;
  physical.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));

  SeriesTable table("declared%");
  const auto s_ms = table.add_series("shared-opt.MS");
  const auto s_md = table.add_series("distributed-opt.MD");
  const auto s_td = table.add_series("tradeoff.Tdata");

  for (const int pct : {25, 40, 50, 60, 75, 90, 100}) {
    MachineConfig declared = physical.with_caches_scaled(pct, 100);
    declared.cd = std::max<std::int64_t>(declared.cd, 3);
    const auto x = static_cast<double>(pct);

    Machine shared(physical, Policy::kLru);
    make_algorithm("shared-opt")->run(shared, prob, declared);
    table.set(s_ms, x, static_cast<double>(shared.stats().ms()));

    Machine dist(physical, Policy::kLru);
    make_algorithm("distributed-opt")->run(dist, prob, declared);
    table.set(s_md, x, static_cast<double>(dist.stats().md()));

    Machine trade(physical, Policy::kLru);
    make_algorithm("tradeoff")->run(trade, prob, declared);
    table.set(s_td, x,
              trade.stats().tdata(physical.sigma_s, physical.sigma_d));
  }
  bench::emit(
      "Ablation: declared cache fraction under LRU, order " +
          std::to_string(prob.m) + ", CS=977 CD=21",
      table, cli.flag("csv"));
  return 0;
}
