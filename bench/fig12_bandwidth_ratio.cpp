// Figure 12 (a-f): impact of the cache-bandwidth ratio r = sigma_S /
// (sigma_S + sigma_D) on Tdata, for a fixed square matrix (the paper uses
// m = 384) under the IDEAL setting, across all six cache configurations.
//
// Series: the five IDEAL-capable algorithms plus Outer Product and the
// lower bound.  Expected shape: Shared Opt. and Distributed Opt. cross
// over as r grows; Tradeoff tracks the lower envelope, meeting Shared Opt.
// at r -> 0 and Distributed Opt. at r -> 1 (for q = 32).
#include "alg/registry.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "util/cli.hpp"

using namespace mcmm;

namespace {

void run_subfigure(const char* title, std::int64_t cs, std::int64_t cd,
                   std::int64_t order, int points, bool csv) {
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = cs;
  cfg.cd = cd;
  const Problem prob = Problem::square(order);

  std::vector<double> ratios;
  for (int i = 0; i <= points; ++i) {
    ratios.push_back(static_cast<double>(i) / points);
  }

  SeriesTable table("r");
  for (const auto& name : algorithm_names()) {
    const std::size_t col = table.add_series(name);
    const auto series =
        bandwidth_ratio_sweep(name, prob, cfg, Setting::kIdeal, ratios);
    for (const auto& pt : series) table.set(col, pt.r, pt.tdata);
  }
  const std::size_t col_bound = table.add_series("LowerBound");
  for (const auto& pt : bandwidth_ratio_lower_bound(prob, cfg, ratios)) {
    table.set(col_bound, pt.r, pt.tdata);
  }
  bench::emit(title, table, csv);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  cli.add_flag("full", "use the paper's matrix order (384; slow)");
  cli.add_option("order", "square matrix order in blocks (0 = preset)", "0");
  cli.add_option("points", "number of ratio steps", "10");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.flag("csv");
  std::int64_t order = cli.integer("order");
  if (order == 0) order = cli.flag("full") ? 384 : 96;
  const int points = static_cast<int>(cli.integer("points"));

  char title[128];
  const struct {
    std::int64_t cs, cd;
  } configs[] = {{977, 21}, {977, 16}, {245, 6}, {245, 4}, {157, 4}, {157, 3}};
  const char* sub = "abcdef";
  for (int i = 0; i < 6; ++i) {
    std::snprintf(title, sizeof(title),
                  "Figure 12(%c): Tdata vs r, CS=%lld CD=%lld, m=%lld", sub[i],
                  static_cast<long long>(configs[i].cs),
                  static_cast<long long>(configs[i].cd),
                  static_cast<long long>(order));
    run_subfigure(title, configs[i].cs, configs[i].cd, order, points, csv);
  }
  return 0;
}
