// Figure 12 (a-f): impact of the cache-bandwidth ratio r = sigma_S /
// (sigma_S + sigma_D) on Tdata, for a fixed square matrix (the paper uses
// m = 384) under the IDEAL setting, across all six cache configurations.
//
// Series: the five IDEAL-capable algorithms plus Outer Product and the
// lower bound.  Expected shape: Shared Opt. and Distributed Opt. cross
// over as r grows; Tradeoff tracks the lower envelope, meeting Shared Opt.
// at r -> 0 and Distributed Opt. at r -> 1 (for q = 32).
//
// The x axis is the bandwidth ratio, not the matrix order, so this bench
// keeps its own command line (--order/--points) but shares the sweep
// engine's task-batch machinery: each (sub-figure, algorithm) series is
// one task, sharded across --jobs workers into indexed slots so the tables
// stay bit-identical for every worker count.  --json emits the same
// mcmm-bench-v1 report as the order-sweep benches (tables + timing; there
// are no run_experiment points to list).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>

#include "alg/registry.hpp"
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "exp/bench_report.hpp"
#include "exp/sweep.hpp"
#include "gemm/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

using namespace mcmm;

namespace {

double now_ms() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  cli.add_flag("full", "use the paper's matrix order (384; slow)");
  cli.add_option("order", "square matrix order in blocks (0 = preset)", "0");
  cli.add_option("points", "number of ratio steps", "10");
  cli.add_option("jobs", "sweep worker threads (0 = hardware concurrency)",
                 "0");
  cli.add_option("json", "write the machine-readable bench report here", "");
  if (!cli.parse(argc, argv)) return 0;
  const bool csv = cli.flag("csv");
  std::int64_t order = cli.integer("order");
  if (order == 0) order = cli.flag("full") ? 384 : 96;
  const int points = static_cast<int>(cli.integer("points"));
  const std::int64_t jobs_raw = cli.integer("jobs");
  MCMM_REQUIRE(!(cli.is_set("jobs") && jobs_raw < 1),
               "--jobs must be >= 1 (omit it for hardware concurrency)");
  const int jobs =
      jobs_raw >= 1 ? static_cast<int>(jobs_raw) : default_sweep_jobs();
  const std::string json_path = cli.str("json");
  require_writable_report_path(json_path);

  const Problem prob = Problem::square(order);
  std::vector<double> ratios;
  for (int i = 0; i <= points; ++i) {
    ratios.push_back(static_cast<double>(i) / points);
  }

  const struct {
    std::int64_t cs, cd;
  } configs[] = {{977, 21}, {977, 16}, {245, 6}, {245, 4}, {157, 4}, {157, 3}};
  const char* sub = "abcdef";

  // One task per (sub-figure, algorithm) series; each writes only its own
  // result slot, so the fill below is deterministic for every --jobs.
  struct Task {
    std::size_t table = 0;
    std::size_t col = 0;
    std::string alg;
    MachineConfig cfg;
  };
  std::vector<std::string> titles;
  std::vector<SeriesTable> tables;
  std::vector<MachineConfig> cfgs;
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    MachineConfig cfg;
    cfg.p = 4;
    cfg.cs = configs[i].cs;
    cfg.cd = configs[i].cd;
    cfgs.push_back(cfg);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 12(%c): Tdata vs r, CS=%lld CD=%lld, m=%lld", sub[i],
                  static_cast<long long>(cfg.cs),
                  static_cast<long long>(cfg.cd),
                  static_cast<long long>(order));
    titles.emplace_back(title);
    tables.emplace_back("r");
    for (const auto& name : algorithm_names()) {
      tasks.push_back(
          Task{tables.size() - 1, tables.back().add_series(name), name, cfg});
    }
  }

  std::vector<std::vector<RatioPoint>> results(tasks.size());
  std::vector<double> wall(tasks.size(), 0);
  const double t0 = now_ms();
  const auto evaluate = [&](std::size_t i) {
    const double start = now_ms();
    results[i] = bandwidth_ratio_sweep(tasks[i].alg, prob, tasks[i].cfg,
                                       Setting::kIdeal, ratios);
    wall[i] = now_ms() - start;
  };
  const int workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), tasks.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) evaluate(i);
  } else {
    std::vector<std::function<void()>> batch;
    batch.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      batch.emplace_back([&evaluate, i] { evaluate(i); });
    }
    ThreadPool pool(workers);
    pool.run_batch(batch);
  }
  const double total_wall_ms = now_ms() - t0;

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (const auto& pt : results[i]) {
      tables[tasks[i].table].set(tasks[i].col, pt.r, pt.tdata);
    }
  }
  for (std::size_t t = 0; t < tables.size(); ++t) {
    const std::size_t col_bound = tables[t].add_series("LowerBound");
    for (const auto& pt : bandwidth_ratio_lower_bound(prob, cfgs[t], ratios)) {
      tables[t].set(col_bound, pt.r, pt.tdata);
    }
    bench::emit(titles[t], tables[t], csv);
  }

  if (!json_path.empty()) {
    BenchReport report("fig12");
    for (std::size_t t = 0; t < tables.size(); ++t) {
      report.add_table(titles[t], tables[t]);
    }
    double serial_wall_ms = 0;
    for (const double w : wall) serial_wall_ms += w;
    report.set_timing(jobs, total_wall_ms, serial_wall_ms);
    report.write(json_path);
    std::fprintf(stderr, "bench report written to %s\n", json_path.c_str());
  }
  return 0;
}
