// Extension: LU factorization on the multicore cache model (the paper's
// future work).  Two tables:
//  1. shared-cache misses of the right-looking vs panelled left-looking
//     schedules over the matrix order, against the Loomis-Whitney-style
//     floor on the update phase;
//  2. the left-looking panel-width sweep at a fixed order (the LU
//     counterpart of the Tradeoff's beta ablation).
//
// The LU simulators bypass run_experiment, so the cells ride the sweep
// engine as custom closures — each builds its own Machine, keeping the
// parallel run race-free and the tables bit-identical for every --jobs.
#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "lu/lu_sim.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "LU extension",
                                   /*default_max=*/96, /*paper_max=*/256,
                                   /*default_step=*/16, &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  bench::BenchDriver driver("ext_lu", opt);
  {
    SeriesTable& table =
        driver.table("LU extension: MS vs order, CS=977 CD=21 (LRU)", "order");
    const auto s_right = table.add_series("right-looking.MS");
    const auto s_left = table.add_series("left-looking.MS");
    const auto s_width = table.add_series("panel-width");
    const auto s_bound = table.add_series("LowerBound");
    for (const std::int64_t n :
         order_sweep(opt.min_order, opt.max_order, opt.step)) {
      const auto x = static_cast<double>(n);
      driver.cell_custom(s_right, x, [cfg, n] {
        Machine right(cfg, Policy::kLru);
        simulate_lu_right_looking(right, n);
        return static_cast<double>(right.stats().ms());
      });
      const std::int64_t width = lu_panel_width(cfg, n);
      driver.cell_custom(s_left, x, [cfg, n, width] {
        Machine left(cfg, Policy::kLru);
        simulate_lu_left_looking(left, n, width);
        return static_cast<double>(left.stats().ms());
      });
      table.set(s_width, x, static_cast<double>(width));
      table.set(s_bound, x, lu_ms_lower_bound(n, cfg.cs));
    }
  }

  {
    const std::int64_t n = std::max<std::int64_t>(opt.max_order / 2, 48);
    SeriesTable& table = driver.table(
        "LU extension: panel-width sweep at order " + std::to_string(n),
        "panel-width");
    const auto s_ms = table.add_series("left-looking.MS");
    const auto s_md = table.add_series("left-looking.MD");
    for (const std::int64_t width : {1, 2, 3, 4, 6, 8, 12, 16}) {
      if (width > cfg.cd - 2) break;
      const auto x = static_cast<double>(width);
      driver.cell_custom(s_ms, x, [cfg, n, width] {
        Machine machine(cfg, Policy::kLru);
        simulate_lu_left_looking(machine, n, width);
        return static_cast<double>(machine.stats().ms());
      });
      driver.cell_custom(s_md, x, [cfg, n, width] {
        Machine machine(cfg, Policy::kLru);
        simulate_lu_left_looking(machine, n, width);
        return static_cast<double>(machine.stats().md());
      });
    }
  }
  driver.finish();
  return 0;
}
