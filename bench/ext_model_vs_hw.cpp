// Extension: the simulator's predicted misses vs hardware counters.
//
// Closes the model-vs-measurement loop the paper defers to future work:
// the four real schedules (src/gemm) run on actual matrices under a
// perf_event counter session while the simulator predicts MS/MD for the
// same machine geometry (from a calibrated mcmm-machine-v1 profile, or
// topology detection when --machine is not given).  Hardware misses are
// cache *lines*; the model counts q x q *blocks*, so measured counts are
// normalised to q²-coefficient block equivalents
//
//   hw_blocks = lines * line_bytes / (8 q²)
//
// before they sit next to the predictions.  Mapping caveats (the LLC-miss
// <-> MS and L1d-miss <-> MD proxies) are documented in
// docs/calibration.md.
//
// Degrades gracefully: without counter access (or with --no-counters) the
// hw columns are zero, the ratio summary says "unavailable", and the exit
// code stays 0 — the predicted columns and timings are still emitted.
//
//   $ ext_model_vs_hw --machine machine.json --json BENCH_model_vs_hw.json
//   $ ext_model_vs_hw --no-counters --max-order 8 --csv        # CI smoke
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "exp/sweep.hpp"
#include "exp/timeline.hpp"
#include "gemm/kernel.hpp"
#include "gemm/parallel_gemm.hpp"
#include "hw/affinity.hpp"
#include "hw/bandwidth.hpp"
#include "hw/machine_profile.hpp"
#include "hw/perf_counters.hpp"
#include "hw/topology.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracer.hpp"

using namespace mcmm;

namespace {

using GemmFn = void (*)(Matrix&, const Matrix&, const Matrix&, const Tiling&,
                        ThreadPool&, KernelContext&);

struct Schedule {
  const char* name;  ///< registry name, shared by simulator and real run
  GemmFn fn;
};

void run_shared_opt(Matrix& c, const Matrix& a, const Matrix& b,
                    const Tiling& t, ThreadPool& pool, KernelContext& ctx) {
  parallel_gemm_shared_opt(c, a, b, t, pool, ctx);
}
void run_distributed_opt(Matrix& c, const Matrix& a, const Matrix& b,
                         const Tiling& t, ThreadPool& pool,
                         KernelContext& ctx) {
  parallel_gemm_distributed_opt(c, a, b, t, pool, ctx);
}
void run_tradeoff(Matrix& c, const Matrix& a, const Matrix& b,
                  const Tiling& t, ThreadPool& pool, KernelContext& ctx) {
  parallel_gemm_tradeoff(c, a, b, t, pool, ctx);
}
void run_outer_product(Matrix& c, const Matrix& a, const Matrix& b,
                       const Tiling& t, ThreadPool& pool, KernelContext& ctx) {
  parallel_gemm_outer_product(c, a, b, t, pool, ctx);
}

constexpr Schedule kSchedules[] = {
    {"shared-opt", &run_shared_opt},
    {"distributed-opt", &run_distributed_opt},
    {"tradeoff", &run_tradeoff},
    {"outer-product", &run_outer_product},
};

/// One measured execution, already block-normalised.
struct HwRun {
  bool available = false;
  double ms_blocks = 0;   ///< LLC miss lines -> q² blocks
  double md_blocks = 0;   ///< L1d read-miss lines -> q² blocks
  double ipc = 0;
  double wall_ms = 0;
};

Setting parse_setting(const std::string& s) {
  if (s == "ideal") return Setting::kIdeal;
  if (s == "lru50") return Setting::kLru50;
  if (s == "lru") return Setting::kLruFull;
  if (s == "lru2x") return Setting::kLruDouble;
  throw Error("unknown setting: " + s + " (ideal|lru50|lru|lru2x)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV instead of aligned tables");
  cli.add_flag("no-counters", "skip hardware counters (hw columns read 0)");
  cli.add_flag("pin", "pin real-run workers to distinct L2 domains");
  cli.add_option("kernel", "block kernel path: auto | scalar | simd", "auto");
  cli.add_option("machine", "mcmm-machine-v1 profile (mcmm_calibrate)", "");
  cli.add_option("q", "block side in coefficients (0 = profile's q)", "0");
  cli.add_option("min-order", "smallest matrix order in blocks", "8");
  cli.add_option("max-order", "largest matrix order in blocks", "24");
  cli.add_option("step", "sweep step in blocks", "8");
  cli.add_option("threads", "real-run worker threads (0 = model's p)", "0");
  cli.add_option("jobs", "simulation worker threads (0 = hw concurrency)",
                 "0");
  cli.add_option("setting", "simulator setting: ideal | lru50 | lru | lru2x",
                 "lru50");
  cli.add_option("json", "write the mcmm-bench-v1 report here", "");
  cli.add_option("trace",
                 "write a Chrome trace-event JSON of the measured runs here",
                 "");
  cli.add_flag("trace-summary", "print the per-worker phase summary table");
  if (!cli.parse(argc, argv)) return 0;

  MachineProfile profile;
  if (cli.is_set("machine")) {
    profile = load_machine_profile(cli.str("machine"));
  } else {
    profile.topology = detect_host_topology();
    profile.perf_event_paranoid = PerfCounterSession::perf_event_paranoid();
  }
  if (cli.integer("q") > 0) profile.q = cli.integer("q");
  const std::int64_t q = profile.q;
  const MachineConfig cfg = profile.machine_config();
  const Tiling tiling = profile.tiling();
  const Setting setting = parse_setting(cli.str("setting"));

  FigureOptions opt;
  opt.csv = cli.flag("csv");
  opt.min_order = cli.integer("min-order");
  opt.max_order = cli.integer("max-order");
  opt.step = cli.integer("step");
  MCMM_REQUIRE(opt.step >= 1, "--step must be >= 1");
  MCMM_REQUIRE(opt.min_order >= 1 && opt.min_order <= opt.max_order,
               "--min-order must be in [1, --max-order]");
  const std::int64_t jobs = cli.integer("jobs");
  MCMM_REQUIRE(!(cli.is_set("jobs") && jobs < 1),
               "--jobs must be >= 1 (omit it for hardware concurrency)");
  opt.jobs = jobs >= 1 ? static_cast<int>(jobs) : default_sweep_jobs();
  opt.json_path = cli.str("json");
  require_writable_report_path(opt.json_path);

  const std::int64_t threads_raw = cli.integer("threads");
  MCMM_REQUIRE(!(cli.is_set("threads") && threads_raw < 1),
               "--threads must be >= 1 (omit it for the model's p)");
  const int threads =
      threads_raw >= 1 ? static_cast<int>(threads_raw) : cfg.p;

  const std::vector<std::int64_t> orders =
      order_sweep(opt.min_order, opt.max_order, opt.step);

  // Counter session BEFORE the pool: `inherit` only reaches threads
  // created after the events are open.
  PerfCounterSession::Options copt;
  copt.enabled = !cli.flag("no-counters");
  PerfCounterSession session(copt);
  ThreadPool pool(threads);
  int pinned = 0;
  if (cli.flag("pin")) {
    // Pin against the *live* topology when possible: its per-CPU L2 domain
    // map handles split-sibling SMT numbering, which a profile loaded from
    // disk (mcmm-machine-v1 carries no per-CPU map) cannot.
    HostTopology pin_topo =
        cli.is_set("machine") ? detect_host_topology() : profile.topology;
    if (!pin_topo.detected()) pin_topo = profile.topology;
    pinned = pin_pool_to_host(pool, pin_topo);
  }
  // An explicit --kernel wins; otherwise a tuned profile (mcmm_tune's
  // kernel_tuning section) supplies the kernel, prefetch distances, and
  // streaming policy for the measured half.
  const KernelPath kernel_path = parse_kernel_path(cli.str("kernel"));
  KernelContext ctx =
      kernel_path == KernelPath::kAuto && profile.kernel_tuning.tuned
          ? KernelContext(pool.workers(), profile.kernel_tuning)
          : KernelContext(pool.workers(), kernel_path);

  std::printf("# model vs hardware | %s | q=%lld | %s | threads=%d\n",
              cfg.describe().c_str(), static_cast<long long>(q),
              to_string(setting), threads);
  std::printf("# kernel: %s | pinned workers: %d/%d\n",
              ctx.dispatch_name().c_str(), pinned, pool.workers());
  std::printf("# counters: %s\n",
              session.counters_available()
                  ? "available"
                  : ("unavailable — " + session.degradation_reason()).c_str());

  // Lines-to-blocks normalisation: one q² block is q²*8 bytes of lines.
  const double lines_per_block =
      static_cast<double>(q) * static_cast<double>(q) * 8.0 /
      static_cast<double>(profile.topology.line_bytes);

  // --- Measured half: serial over (schedule, order), counters bracketed
  // around each run; a warm-up execution first so page faults and cache
  // warm-up do not land in the measured window.  The tracer is attached
  // only around the measured execution (the warm-up stays invisible), so
  // region k of the trace is exactly the k-th measured run in loop order.
  ExecutionTracer tracer(pool.workers());
  std::map<std::pair<std::string, std::int64_t>, std::size_t> region_of;
  std::map<std::pair<std::string, std::int64_t>, HwRun> hw;
  for (const Schedule& sched : kSchedules) {
    for (const std::int64_t order : orders) {
      const std::int64_t n = order * q;
      Matrix a(n, n);
      Matrix b(n, n);
      Matrix c(n, n);
      a.fill_random(1);
      b.fill_random(2);
      sched.fn(c, a, b, tiling, pool, ctx);  // warm-up
      c.set_zero();
      pool.set_tracer(&tracer);
      ctx.set_tracer(&tracer);
      const auto t0 = std::chrono::steady_clock::now();
      session.begin();
      sched.fn(c, a, b, tiling, pool, ctx);
      const CounterSample d = session.end();
      const auto t1 = std::chrono::steady_clock::now();
      pool.set_tracer(nullptr);
      ctx.set_tracer(nullptr);
      region_of[{sched.name, order}] = tracer.num_regions() - 1;
      HwRun run;
      run.available = d.available;
      run.ms_blocks = static_cast<double>(d.llc_misses) / lines_per_block;
      run.md_blocks = static_cast<double>(d.l1d_misses) / lines_per_block;
      run.ipc = d.cycles > 0 ? static_cast<double>(d.instructions) /
                                   static_cast<double>(d.cycles)
                             : 0;
      run.wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      hw[{sched.name, order}] = run;
    }
  }

  // --- Predicted half: through the parallel sweep engine, landing in the
  // same tables as the measured columns.
  bench::BenchDriver driver("ext_model_vs_hw", opt);
  // Which micro-kernel actually executed the measured half — readers of the
  // report need this to interpret the hw columns (docs/kernels.md).
  driver.annotate("kernel_dispatch", ctx.dispatch_name());
  driver.annotate("pinned_workers", std::to_string(pinned) + "/" +
                                        std::to_string(pool.workers()));

  struct TableRef {
    SeriesTable* table = nullptr;
    std::map<std::string, std::size_t> sim_series;
  };
  TableRef ms_ref;
  TableRef md_ref;
  {
    SeriesTable& table = driver.table(
        "MS: simulated vs measured (q^2-coefficient blocks), " +
            cfg.describe() + ", q=" + std::to_string(q),
        "order");
    ms_ref.table = &table;
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_sim =
          table.add_series(std::string(sched.name) + ".MS.sim");
      const std::size_t s_hw =
          table.add_series(std::string(sched.name) + ".MS.hw");
      ms_ref.sim_series[sched.name] = s_sim;
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        driver.cell(s_sim, x, sched.name, order, cfg, setting, Metric::kMs);
        table.set(s_hw, x, hw[{sched.name, order}].ms_blocks);
      }
    }
  }
  {
    SeriesTable& table = driver.table(
        "MD: simulated vs measured (q^2-coefficient blocks, L1d proxy), " +
            cfg.describe() + ", q=" + std::to_string(q),
        "order");
    md_ref.table = &table;
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_sim =
          table.add_series(std::string(sched.name) + ".MD.sim");
      const std::size_t s_hw =
          table.add_series(std::string(sched.name) + ".MD.hw");
      md_ref.sim_series[sched.name] = s_sim;
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        driver.cell(s_sim, x, sched.name, order, cfg, setting, Metric::kMd);
        table.set(s_hw, x, hw[{sched.name, order}].md_blocks);
      }
    }
  }
  {
    SeriesTable& table =
        driver.table("hardware detail: wall time and IPC per schedule",
                     "order");
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_wall =
          table.add_series(std::string(sched.name) + ".wall_ms");
      const std::size_t s_ipc =
          table.add_series(std::string(sched.name) + ".ipc");
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        table.set(s_wall, x, hw[{sched.name, order}].wall_ms);
        table.set(s_ipc, x, hw[{sched.name, order}].ipc);
      }
    }
  }
  // --- Envelope validation: run the predicted half now (finish() will
  // find nothing pending) — the envelopes need each run's MachineStats,
  // not just the headline metrics.
  driver.runner().run();
  std::map<std::pair<std::string, std::int64_t>, std::size_t> sim_of;
  for (std::size_t sim = 0; sim < driver.runner().num_simulations(); ++sim) {
    const SweepPoint& pt = driver.runner().simulation(sim);
    sim_of[{pt.algorithm, pt.problem.m}] = sim;
  }

  // Physical bandwidths in blocks per millisecond.  1 GB/s = 1e6 bytes/ms;
  // one block is q^2 doubles.  Quick-measure when the profile carries no
  // measured sweep (topology-only runs).
  BandwidthEstimate bw = profile.bandwidth;
  if (!bw.measured) {
    BandwidthOptions bopt;
    bopt.quick = true;
    bw = measure_host_bandwidth(profile.topology, bopt);
  }
  const double block_bytes =
      static_cast<double>(q) * static_cast<double>(q) * 8.0;
  const double sigma_s_ms = bw.mem_gbs * 1e6 / block_bytes;
  const double sigma_d_ms = bw.llc_gbs * 1e6 / block_bytes;
  const bool sigma_ok = sigma_s_ms > 0 && sigma_d_ms > 0;

  const TraceSummary summary = summarize_trace(tracer);

  // Per-run compute rate (block FMAs per ms): the busiest worker's traced
  // micro-kernel time against the busiest simulated core's FMA count.
  const auto busiest_micro_ms = [&](const std::string& name,
                                    std::int64_t order) {
    const auto it = region_of.find({name, order});
    if (it == region_of.end() || it->second >= summary.regions.size()) {
      return 0.0;
    }
    double out = 0;
    for (const PhaseTotals& w : summary.regions[it->second].workers) {
      out = std::max(out, w.ms(TracePhase::kMicroKernel));
    }
    return out;
  };

  std::map<std::pair<std::string, std::int64_t>, TimeEnvelope> env_of;
  {
    SeriesTable& table = driver.table(
        "time envelope: measured wall vs no-overlap (serial) and "
        "perfect-overlap bounds (ms)",
        "order");
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_wall =
          table.add_series(std::string(sched.name) + ".wall_ms");
      const std::size_t s_serial =
          table.add_series(std::string(sched.name) + ".serial_ms");
      const std::size_t s_overlap =
          table.add_series(std::string(sched.name) + ".overlap_ms");
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        table.set(s_wall, x, hw[{sched.name, order}].wall_ms);
        const RunResult& res =
            driver.runner().result(sim_of.at({sched.name, order}));
        const double micro_ms = busiest_micro_ms(sched.name, order);
        std::int64_t busiest_fmas = 0;
        for (const std::int64_t f : res.stats.fmas) {
          busiest_fmas = std::max(busiest_fmas, f);
        }
        // Leave the bound cells null when the rate is unavailable (dropped
        // trace spans or a degenerate bandwidth sweep).
        if (!sigma_ok || micro_ms <= 0 || busiest_fmas <= 0) continue;
        MachineConfig env_cfg = cfg;
        env_cfg.sigma_s = sigma_s_ms;
        env_cfg.sigma_d = sigma_d_ms;
        const TimeEnvelope env = time_envelope(
            res.stats, env_cfg, static_cast<double>(busiest_fmas) / micro_ms);
        table.set(s_serial, x, env.serial);
        table.set(s_overlap, x, env.overlap);
        env_of[{sched.name, order}] = env;
      }
    }
  }
  // --- Roofline: the measured FLOP rate of each run against
  // roof = min(compute peak, bandwidth ceiling), Treibig–Hager style.
  // The compute leg is the packed engine's own single-core rate (measured
  // once, same kernel/knobs, scaled by the worker count); the bandwidth
  // leg converts the *simulated* shared-memory traffic MS·q²·8 bytes to
  // time at the calibrated memory bandwidth.  Bound times are
  // model-deterministic given a calibrated profile, so they sit in
  // "results"; measured GFLOP/s and %-of-roof are wall-clock figures and
  // land in "timing" (docs/calibration.md).
  double peak_gflops = 0;  // one core, this kernel configuration
  {
    const std::int64_t n_peak =
        std::max<std::int64_t>(q, 384 / q * q);
    Matrix a(n_peak, n_peak);
    Matrix b(n_peak, n_peak);
    Matrix c(n_peak, n_peak);
    a.fill_random(1);
    b.fill_random(2);
    KernelContext peak_ctx =
        kernel_path == KernelPath::kAuto && profile.kernel_tuning.tuned
            ? KernelContext(1, profile.kernel_tuning)
            : KernelContext(1, kernel_path);
    const double flops = 2.0 * static_cast<double>(n_peak) *
                         static_cast<double>(n_peak) *
                         static_cast<double>(n_peak);
    double best_ms = 0;
    for (int rep = 0; rep < 4; ++rep) {  // rep 0 is the warm-up
      c.set_zero();
      const auto t0 = std::chrono::steady_clock::now();
      gemm_micro(c, a, b, q, peak_ctx);
      const auto t1 = std::chrono::steady_clock::now();
      const double run_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (rep == 0) continue;
      best_ms = best_ms <= 0 ? run_ms : std::min(best_ms, run_ms);
    }
    if (best_ms > 0) peak_gflops = flops / (best_ms * 1e6);
  }
  const double machine_peak_gflops =
      peak_gflops * static_cast<double>(pool.workers());

  struct RoofPoint {
    double bw_ms = 0;      ///< time to move the simulated MS traffic
    double comp_ms = 0;    ///< time at the measured compute peak
    double gflops = 0;     ///< measured rate of this run
    double roof_gflops = 0;
    double pct = 0;        ///< 100 * measured / roof
  };
  std::map<std::pair<std::string, std::int64_t>, RoofPoint> roof_of;
  {
    SeriesTable& table = driver.table(
        "roofline bounds: bandwidth time (sim MS at calibrated GB/s) and "
        "compute time (measured peak) per schedule (ms)",
        "order");
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_bw =
          table.add_series(std::string(sched.name) + ".bw_bound_ms");
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        const RunResult& res =
            driver.runner().result(sim_of.at({sched.name, order}));
        if (bw.mem_gbs <= 0) continue;
        const double traffic_bytes = static_cast<double>(res.ms) * block_bytes;
        table.set(s_bw, x, traffic_bytes / (bw.mem_gbs * 1e6));
      }
    }
    for (const Schedule& sched : kSchedules) {
      for (const std::int64_t order : orders) {
        const std::int64_t n = order * q;
        const double flops = 2.0 * static_cast<double>(n) *
                             static_cast<double>(n) * static_cast<double>(n);
        RoofPoint pt;
        const RunResult& res =
            driver.runner().result(sim_of.at({sched.name, order}));
        if (bw.mem_gbs > 0) {
          pt.bw_ms = static_cast<double>(res.ms) * block_bytes /
                     (bw.mem_gbs * 1e6);
        }
        if (machine_peak_gflops > 0) {
          pt.comp_ms = flops / (machine_peak_gflops * 1e6);
        }
        const double roof_ms = std::max(pt.bw_ms, pt.comp_ms);
        const double wall = hw[{sched.name, order}].wall_ms;
        if (wall > 0) pt.gflops = flops / (wall * 1e6);
        if (roof_ms > 0) {
          pt.roof_gflops = flops / (roof_ms * 1e6);
          if (wall > 0) pt.pct = 100.0 * roof_ms / wall;
        }
        roof_of[{sched.name, order}] = pt;
      }
    }
  }
  {
    SeriesTable& table = driver.timing_table(
        "roofline: measured GFLOP/s, attainable roof, and %-of-roof per "
        "schedule",
        "order");
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_gf =
          table.add_series(std::string(sched.name) + ".gflops");
      const std::size_t s_roof =
          table.add_series(std::string(sched.name) + ".roof_gflops");
      const std::size_t s_pct =
          table.add_series(std::string(sched.name) + ".pct_of_peak");
      for (const std::int64_t order : orders) {
        const auto x = static_cast<double>(order);
        const RoofPoint& pt = roof_of[{sched.name, order}];
        if (pt.gflops > 0) table.set(s_gf, x, pt.gflops);
        if (pt.roof_gflops > 0) table.set(s_roof, x, pt.roof_gflops);
        if (pt.pct > 0) table.set(s_pct, x, pt.pct);
      }
    }
  }
  {
    // Where each worker's region time went on the largest product (the
    // full per-region attribution is embedded under timing.trace).
    const std::int64_t top = orders.back();
    SeriesTable& table = driver.table(
        "per-worker phase attribution at order " + std::to_string(top) +
            " (ms)",
        "worker");
    for (const Schedule& sched : kSchedules) {
      const std::size_t s_pack_a =
          table.add_series(std::string(sched.name) + ".pack_a_ms");
      const std::size_t s_pack_b =
          table.add_series(std::string(sched.name) + ".pack_b_ms");
      const std::size_t s_micro =
          table.add_series(std::string(sched.name) + ".micro_kernel_ms");
      const std::size_t s_barrier =
          table.add_series(std::string(sched.name) + ".barrier_ms");
      const std::size_t region = region_of[{sched.name, top}];
      if (region >= summary.regions.size()) continue;
      const RegionSummary& r = summary.regions[region];
      for (std::size_t w = 0; w < r.workers.size(); ++w) {
        const auto x = static_cast<double>(w);
        table.set(s_pack_a, x, r.workers[w].ms(TracePhase::kPackA));
        table.set(s_pack_b, x, r.workers[w].ms(TracePhase::kPackB));
        table.set(s_micro, x, r.workers[w].ms(TracePhase::kMicroKernel));
        table.set(s_barrier, x, r.workers[w].ms(TracePhase::kBarrier));
      }
    }
  }
  driver.set_trace_summary(trace_summary_json(summary));
  driver.finish();

  // --- Ratio summary: measured / predicted, aggregated over the sweep.
  std::printf("\n# measured/predicted ratio (aggregated over orders %lld..%lld)\n",
              static_cast<long long>(opt.min_order),
              static_cast<long long>(opt.max_order));
  for (const Schedule& sched : kSchedules) {
    if (!session.counters_available()) {
      std::printf("  %-18s MS n/a   MD n/a   (counters unavailable)\n",
                  sched.name);
      continue;
    }
    double sim_ms = 0;
    double sim_md = 0;
    double hw_ms = 0;
    double hw_md = 0;
    for (const std::int64_t order : orders) {
      const auto x = static_cast<double>(order);
      sim_ms += ms_ref.table->cell(ms_ref.sim_series[sched.name], x)
                    .value_or(0);
      sim_md += md_ref.table->cell(md_ref.sim_series[sched.name], x)
                    .value_or(0);
      hw_ms += hw[{sched.name, order}].ms_blocks;
      hw_md += hw[{sched.name, order}].md_blocks;
    }
    std::printf("  %-18s MS %.3fx   MD %.3fx\n", sched.name,
                sim_ms > 0 ? hw_ms / sim_ms : 0,
                sim_md > 0 ? hw_md / sim_md : 0);
  }

  // --- Envelope summary at the largest order: where each schedule's
  // measured wall time sits in [overlap, serial], and which resource the
  // perfect-overlap bound says saturates first.
  const std::int64_t top = orders.back();
  std::printf(
      "\n# envelope at order %lld: measured wall vs [overlap, serial] "
      "bounds (ms)\n",
      static_cast<long long>(top));
  for (const Schedule& sched : kSchedules) {
    const auto it = env_of.find({sched.name, top});
    if (it == env_of.end()) {
      std::printf("  %-18s n/a (trace or bandwidth unavailable)\n",
                  sched.name);
      continue;
    }
    const TimeEnvelope& env = it->second;
    const double wall = hw[{sched.name, top}].wall_ms;
    std::printf(
        "  %-18s wall %9.3f  serial %9.3f  overlap %9.3f  "
        "wall/serial %.3fx  wall/overlap %.3fx  saturates %s\n",
        sched.name, wall, env.serial, env.overlap,
        env.serial > 0 ? wall / env.serial : 0,
        env.overlap > 0 ? wall / env.overlap : 0, to_string(env.bottleneck));
  }

  // --- Roofline summary at the largest order: how close each schedule
  // runs to roof = min(measured compute peak, calibrated bandwidth).
  std::printf(
      "\n# roofline at order %lld: single-core peak %.2f GFLOP/s x %d "
      "workers, memory %.2f GB/s\n",
      static_cast<long long>(top), peak_gflops, pool.workers(), bw.mem_gbs);
  for (const Schedule& sched : kSchedules) {
    const RoofPoint& pt = roof_of[{sched.name, top}];
    if (pt.gflops <= 0 || pt.roof_gflops <= 0) {
      std::printf("  %-18s n/a (wall time or bounds unavailable)\n",
                  sched.name);
      continue;
    }
    std::printf(
        "  %-18s measured %8.2f GFLOP/s  roof %8.2f GFLOP/s  "
        "%5.1f%% of peak  limited by %s\n",
        sched.name, pt.gflops, pt.roof_gflops, pt.pct,
        pt.bw_ms > pt.comp_ms ? "bandwidth" : "compute");
  }

  if (!cli.str("trace").empty()) {
    write_chrome_trace(tracer, cli.str("trace"));
    std::fprintf(stderr, "trace written to %s\n", cli.str("trace").c_str());
  }
  if (cli.flag("trace-summary")) print_trace_summary(summary);
  return 0;
}
