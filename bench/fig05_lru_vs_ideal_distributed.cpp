// Figure 5: impact of the LRU policy on the distributed-cache misses MD of
// Distributed Opt. (CD = 21, the q=32 quad-core).  Same four series as
// Figure 4, for the distributed level.
#include "analysis/params.hpp"
#include "analysis/predictions.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 5", /*default_max=*/240,
                                   /*paper_max=*/600, /*default_step=*/40,
                                   &opt)) {
    return 0;
  }
  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;

  bench::BenchDriver driver("fig05", opt);
  SeriesTable& table = driver.table(
      "Figure 5: MD of Distributed Opt. under LRU vs formula, CD=21", "order");
  const auto s_2c = table.add_series("LRU(2C)");
  const auto s_c = table.add_series("LRU(C)");
  const auto s_formula = table.add_series("Formula(CD)");
  const auto s_formula2 = table.add_series("2xFormula(CD)");

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const Problem prob = Problem::square(order);
    const auto x = static_cast<double>(order);
    driver.cell(s_2c, x, "distributed-opt", order, cfg, Setting::kLruDouble,
                Metric::kMd);
    driver.cell(s_c, x, "distributed-opt", order, cfg, Setting::kLruFull,
                Metric::kMd);
    const double formula =
        predict_distributed_opt(prob, cfg.p, distributed_opt_params(cfg)).md;
    table.set(s_formula, x, formula);
    table.set(s_formula2, x, 2 * formula);
  }
  driver.finish();
  return 0;
}
