// Ablation: sensitivity of the LRU shared cache to how tightly the cores
// interleave.
//
// The simulator dispatches parallel sections round-robin, `chunk` block
// operations per core per turn.  chunk=1 is perfect lockstep (the model's
// assumption of identical cores); large chunks model cores drifting apart.
// Cache-aware schedules confine each core to a private slice of a shared
// tile, so they barely move; cache-oblivious ones (Outer Product, Cannon)
// swing a lot — Cannon flips from on-par-with-Outer-Product to several
// times better once cores stop evicting each other's super-tiles.
#include "alg/registry.hpp"
#include "bench_common.hpp"
#include "sim/machine.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("order", "square matrix order in blocks", "64");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const Problem prob = Problem::square(cli.integer("order"));

  SeriesTable table("chunk");
  std::vector<std::size_t> cols;
  const auto names = extended_algorithm_names();
  for (const auto& name : names) cols.push_back(table.add_series(name));

  for (const std::int64_t chunk : {1, 4, 16, 64, 256, 1024, 4096, 16384}) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      Machine machine(cfg, Policy::kLru);
      machine.set_interleave_chunk(chunk);
      make_algorithm(names[i])->run(machine, prob, cfg);
      table.set(cols[i], static_cast<double>(chunk),
                static_cast<double>(machine.stats().ms()));
    }
  }
  bench::emit("Ablation: shared-cache misses MS vs interleave chunk, order " +
                  std::to_string(prob.m) + ", CS=977 CD=21 (LRU)",
              table, cli.flag("csv"));
  return 0;
}
