// Extension: problem-shape sensitivity at constant work.
//
// The paper evaluates square matrices only, but its formulas say the
// schedules react very differently to the aspect ratio: every MS/MD
// expression splits into an mn term (the C footprint, paid once) and
// mnz/side streaming terms.  Sweeping shapes at FIXED total work
// mnz = W^3 exposes this: outer-product-shaped problems (z small, mn
// huge) are dominated by the C terms and hurt everyone; inner-product
// shapes (z huge, mn small) make the Maximum Reuse schedules shine since
// their C terms vanish.
#include "bench_common.hpp"
#include "alg/registry.hpp"
#include "analysis/bounds.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("work", "W: problems have m*n*z = W^3", "64");
  if (!cli.parse(argc, argv)) return 0;

  MachineConfig cfg;
  cfg.p = 4;
  cfg.cs = 977;
  cfg.cd = 21;
  const std::int64_t w = cli.integer("work");

  // Shapes (m, n, z) with m*n*z == w^3, from outer-product-like (small z)
  // to inner-product-like (large z).  All dimensions kept >= 4 blocks.
  const struct {
    const char* label;
    std::int64_t m, n, z;
  } shapes[] = {
      {"panel:z=W/16", w * 2, w * 2, w / 4},
      {"flat:z=W/4", w * 2, w, w / 2},
      {"square", w, w, w},
      {"deep:z=4W", w / 2, w, 2 * w},
      {"dot-like:z=16W", w / 4, w / 2, 8 * w},
  };

  SeriesTable table("shape#");
  std::vector<std::size_t> cols;
  for (const auto& name : algorithm_names()) {
    cols.push_back(table.add_series(name + ".Tdata"));
  }
  const auto s_bound = table.add_series("LowerBound");

  std::printf("# shapes at constant work W=%lld (x axis = shape index):\n",
              static_cast<long long>(w));
  int idx = 0;
  for (const auto& s : shapes) {
    std::printf("#   %d: %-14s m=%lld n=%lld z=%lld\n", idx, s.label,
                static_cast<long long>(s.m), static_cast<long long>(s.n),
                static_cast<long long>(s.z));
    const Problem prob{s.m, s.n, s.z};
    const auto x = static_cast<double>(idx++);
    std::size_t col = 0;
    for (const auto& name : algorithm_names()) {
      const RunResult res = run_experiment(name, prob, cfg, Setting::kIdeal);
      table.set(cols[col++], x, res.tdata);
    }
    table.set(s_bound, x, tdata_lower_bound(prob, cfg));
  }
  bench::emit("Extension: Tdata across aspect ratios at constant work",
              table, cli.flag("csv"));
  return 0;
}
