// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints one table per sub-figure: a column per series (exactly
// the series of the paper's plot) over a shared x axis.  Defaults sweep a
// reduced range so the whole harness finishes in minutes; --full restores
// the paper's ranges (the curves' shapes are identical, only the x extent
// changes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/machine_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mcmm::bench {

/// Common CLI for the figure benches.
struct FigureOptions {
  bool csv = false;
  std::int64_t max_order = 0;   ///< largest matrix order in blocks
  std::int64_t step = 0;        ///< sweep step
  std::int64_t min_order = 0;
};

/// Parse the standard options.  `default_max`/`paper_max` choose the sweep
/// extent without/with --full.  Returns false if --help was printed.
bool parse_figure_options(int argc, const char* const* argv,
                          const std::string& blurb, std::int64_t default_max,
                          std::int64_t paper_max, std::int64_t default_step,
                          FigureOptions* out);

/// Print a sub-figure header plus the table.
void emit(const std::string& title, const SeriesTable& table, bool csv);

/// Convenience: run one experiment point and return the requested metric.
enum class Metric { kMs, kMd, kTdata };
double measure(const std::string& algorithm, std::int64_t order,
               const MachineConfig& cfg, Setting setting, Metric metric);

/// Figures 9-11 share one layout: for each CD in `cds`, two sub-figures of
/// Tdata vs order — all six algorithms under LRU-50 (plus Tradeoff IDEAL as
/// reference) and all six under IDEAL — each with the lower bound.
void run_tdata_figure(const std::string& figure, std::int64_t cs,
                      const std::vector<std::int64_t>& cds,
                      const FigureOptions& opt);

}  // namespace mcmm::bench
