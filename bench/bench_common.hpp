// Shared plumbing for the figure-reproduction benches.
//
// Every bench prints one table per sub-figure: a column per series (exactly
// the series of the paper's plot) over a shared x axis.  Defaults sweep a
// reduced range so the whole harness finishes in minutes; --full restores
// the paper's ranges (the curves' shapes are identical, only the x extent
// changes).
//
// Since PR 2 the benches no longer simulate inline: they *declare* their
// sweep cells against a BenchDriver, which shards the points across a
// thread pool (--jobs), memoises points shared between sub-figures, prints
// the tables in declaration order (bit-identical for every --jobs value)
// and optionally writes the machine-readable BENCH_*.json report (--json,
// schema in docs/benchmarking.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/figure_options.hpp"
#include "exp/sweep_runner.hpp"
#include "sim/machine_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace mcmm::bench {

using mcmm::FigureOptions;
using mcmm::Metric;
using mcmm::parse_figure_options;

/// Print a sub-figure header plus the table.
void emit(const std::string& title, const SeriesTable& table, bool csv);

/// Declarative sweep executor: benches register tables and cells, then
/// finish() simulates every pending point in parallel, fills the tables,
/// prints them in order and writes the JSON report if requested.
class BenchDriver {
public:
  BenchDriver(std::string bench_name, const FigureOptions& opt);

  /// Start a new sub-figure.  The reference stays valid for the driver's
  /// lifetime; analytic series (closed forms, lower bounds) may be set on
  /// it directly.
  SeriesTable& table(const std::string& title, const std::string& x_label);

  /// Start a *measured* sub-figure: same printing as table(), but the JSON
  /// report emits it under "timing.tables" instead of "results.tables", so
  /// wall-clock series (GFLOP/s, %-of-roofline) never perturb the
  /// deterministic results subtree the sweep-parity job diffs.  Cells are
  /// set directly on the returned table; cell()/cell_custom() do not
  /// target it.
  SeriesTable& timing_table(const std::string& title,
                            const std::string& x_label);

  /// Declare a simulated cell of the *current* table: metric of one
  /// experiment point.  Points appearing in several cells (across tables,
  /// sub-figures or metrics) are simulated once.
  void cell(std::size_t series, double x, const std::string& algorithm,
            std::int64_t order, const MachineConfig& cfg, Setting setting,
            Metric metric);

  /// Declare a cell computed by an arbitrary closure (for benches whose
  /// simulations do not go through run_experiment — LU, hierarchy, ...).
  /// Closures run in parallel alongside the sweep points; each must be
  /// self-contained (no shared mutable state).
  void cell_custom(std::size_t series, double x, std::function<double()> fn);

  /// Attach a deterministic annotation (kernel dispatch string, pinning
  /// state, ...) to the JSON report's "results.context" object.
  void annotate(const std::string& key, const std::string& value);

  /// Attach a pre-serialized mcmm-trace-summary-v1 document; forwarded to
  /// BenchReport::set_trace_summary (emitted under "timing.trace") when
  /// finish() writes the --json report.
  void set_trace_summary(std::string trace_json);

  /// Simulate, fill, print, and (with --json) write the report.
  void finish();

  SweepRunner& runner() { return runner_; }

private:
  struct SimFill {
    std::size_t table = 0;
    std::size_t series = 0;
    double x = 0;
    std::size_t request = 0;
  };
  struct CustomFill {
    std::size_t table = 0;
    std::size_t series = 0;
    double x = 0;
    std::function<double()> fn;
    double value = 0;
    double wall_ms = 0;
  };
  struct Titled {
    std::string title;
    SeriesTable table;
  };

  std::string name_;
  FigureOptions opt_;
  SweepRunner runner_;
  std::vector<std::pair<std::string, std::string>> annotations_;
  std::deque<Titled> tables_;
  std::deque<Titled> timing_tables_;
  std::vector<SimFill> sim_fills_;
  std::vector<CustomFill> custom_fills_;
  std::string trace_json_;
  bool finished_ = false;
};

/// Convenience: run one experiment point serially and return the requested
/// metric (used by tiny one-off probes; sweeps go through BenchDriver).
double measure(const std::string& algorithm, std::int64_t order,
               const MachineConfig& cfg, Setting setting, Metric metric);

/// Figures 9-11 share one layout: for each CD in `cds`, two sub-figures of
/// Tdata vs order — all six algorithms under LRU-50 (plus Tradeoff IDEAL as
/// reference) and all six under IDEAL — each with the lower bound.
void run_tdata_figure(const std::string& figure, std::int64_t cs,
                      const std::vector<std::int64_t>& cds,
                      const FigureOptions& opt);

}  // namespace mcmm::bench
