// Extension: validating the paper's inner-kernel assumption from below.
//
// The block-level model assumes the sequential q x q kernel under each
// block FMA runs out of the private cache (3 q^2 <= S_D; "typically, q
// ranges from 32 to 100").  This bench simulates the kernel's element
// accesses through a 32 KiB, 8-way, 64-byte-line L1 for every loop order
// and sweeps q: while the 3q^2 footprint fits, misses per FMA sit at the
// compulsory floor for every order; past the limit the column-striding
// orders blow up first and even the row-friendly ones degrade — the
// boundary is exactly where the paper's q range ends.
#include "bench_common.hpp"
#include "inner/kernel_sim.hpp"

using namespace mcmm;

int main(int argc, char** argv) {
  CliParser cli;
  cli.add_flag("csv", "emit CSV");
  cli.add_option("l1-kib", "L1 size in KiB", "32");
  cli.add_option("ld", "parent-matrix leading dimension (0 = q)", "0");
  if (!cli.parse(argc, argv)) return 0;

  LineCacheConfig l1;
  l1.size_bytes = cli.integer("l1-kib") * 1024;
  l1.line_bytes = 64;
  l1.ways = 8;

  SeriesTable table("q");
  std::vector<std::size_t> cols;
  for (const LoopOrder order : all_loop_orders()) {
    cols.push_back(table.add_series(std::string("misses/fma.") +
                                    to_string(order)));
  }
  const auto s_floor = table.add_series("cold-floor");
  const auto s_fits = table.add_series("3q^2*8<=L1");

  for (const std::int64_t q : {8, 16, 24, 32, 36, 40, 48, 64, 80, 96}) {
    const std::int64_t ld = cli.integer("ld") == 0 ? q : cli.integer("ld");
    if (ld < q) continue;
    const auto x = static_cast<double>(q);
    std::size_t idx = 0;
    InnerKernelStats last;
    for (const LoopOrder order : all_loop_orders()) {
      last = simulate_inner_kernel(l1, q, order, ld);
      table.set(cols[idx++], x, last.misses_per_fma());
    }
    table.set(s_floor, x,
              static_cast<double>(last.cold_lines) /
                  static_cast<double>(last.fmas));
    table.set(s_fits, x, kernel_fits(l1, q) ? 1.0 : 0.0);
  }
  bench::emit("Inner-kernel extension: L1 misses per block FMA vs q (" +
                  std::to_string(l1.size_bytes / 1024) +
                  " KiB, 8-way, 64B lines)",
              table, cli.flag("csv"));
  return 0;
}
