// Figure 7 (a,b,c): shared-cache misses MS vs matrix order for the three
// quad-core configurations (q = 32, 64, 80).
//
// Series: Shared Opt. LRU-50, Shared Opt. IDEAL, Shared Equal LRU-50,
//         Outer Product, and the lower bound m^3 sqrt(27/(8 CS)).
//
// Expected shape: Shared Opt. < Shared Equal < Outer Product under LRU-50;
// Shared Opt. IDEAL close to the lower bound.
#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "exp/sweep.hpp"

using namespace mcmm;

namespace {

void run_subfigure(bench::BenchDriver& driver, const char* title,
                   std::int64_t q, const bench::FigureOptions& opt) {
  const MachineConfig cfg = MachineConfig::realistic_quadcore(q, 2.0 / 3.0);
  SeriesTable& table = driver.table(title, "order");
  const auto s_opt_lru = table.add_series("SharedOpt.LRU-50");
  const auto s_opt_ideal = table.add_series("SharedOpt.IDEAL");
  const auto s_equal = table.add_series("SharedEqual.LRU-50");
  const auto s_outer = table.add_series("OuterProduct");
  const auto s_bound = table.add_series("LowerBound");

  for (const std::int64_t order :
       order_sweep(opt.min_order, opt.max_order, opt.step)) {
    const auto x = static_cast<double>(order);
    driver.cell(s_opt_lru, x, "shared-opt", order, cfg, Setting::kLru50,
                Metric::kMs);
    driver.cell(s_opt_ideal, x, "shared-opt", order, cfg, Setting::kIdeal,
                Metric::kMs);
    driver.cell(s_equal, x, "shared-equal", order, cfg, Setting::kLru50,
                Metric::kMs);
    driver.cell(s_outer, x, "outer-product", order, cfg, Setting::kLru50,
                Metric::kMs);
    table.set(s_bound, x, ms_lower_bound(Problem::square(order), cfg.cs));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::FigureOptions opt;
  if (!bench::parse_figure_options(argc, argv, "Figure 7", /*default_max=*/192,
                                   /*paper_max=*/1100, /*default_step=*/32,
                                   &opt)) {
    return 0;
  }
  bench::BenchDriver driver("fig07", opt);
  run_subfigure(driver, "Figure 7(a): MS vs order, CS=977 (q=32)", 32, opt);
  run_subfigure(driver, "Figure 7(b): MS vs order, CS=245 (q=64)", 64, opt);
  run_subfigure(driver, "Figure 7(c): MS vs order, CS=157 (q=80)", 80, opt);
  driver.finish();
  return 0;
}
